// Request batching: coalescing compatible queued views into one
// pipeline submission.
//
// The render/composite pipeline serves one view at a time (one
// FrameScheduler slot), so when two sessions ask for (nearly) the same
// camera pose, rendering it twice is pure waste. The batcher picks the
// next submission's LEAD request — highest-priority non-empty session,
// round-robin within the class for per-session fairness — and then
// lets every other session whose FRONT request quantizes to the same
// view key ride along: one render, one composition, N deliveries.
//
// Only queue fronts may join (never mid-queue requests), so each
// session's requests are always served in arrival order — coalescing
// can reorder work across sessions but never within one.
//
// View keys quantize (yaw, pitch) to a grid of `quant_deg` degrees;
// quant_deg <= 0 disables coalescing entirely (every submission
// carries exactly one request). Selection is a pure function of the
// queue states and the round-robin cursors, so a fixed arrival
// schedule always produces the same batches.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "rtc/service/session.hpp"

namespace rtc::service {

/// Quantized camera pose: requests with equal keys are "the same view"
/// for coalescing purposes.
struct ViewKey {
  std::int64_t yaw = 0;
  std::int64_t pitch = 0;
  friend bool operator==(const ViewKey&, const ViewKey&) = default;
};

[[nodiscard]] ViewKey quantize_view(const Request& r, double quant_deg);

/// One pipeline submission: the lead request plus the riders that
/// coalesced onto it (all popped from their queues).
struct Batch {
  Request lead;
  std::vector<Request> riders;
  [[nodiscard]] int size() const {
    return 1 + static_cast<int>(riders.size());
  }
};

class RequestBatcher {
 public:
  explicit RequestBatcher(double quant_deg) : quant_deg_(quant_deg) {}

  /// Pops and returns the next batch. Precondition: at least one
  /// session has a queued request.
  [[nodiscard]] Batch next_batch(std::vector<Session>& sessions);

  [[nodiscard]] double quant_deg() const { return quant_deg_; }

 private:
  double quant_deg_;
  /// Per-priority-class round-robin cursor: the session id AFTER the
  /// one that last led a batch in that class.
  std::map<int, int> rr_cursor_;
};

}  // namespace rtc::service
