// Admission control for the render-service front end.
//
// Every arriving request passes through one AdmissionController before
// it may enter its session's queue. The controller enforces the
// per-session queue bound with one of two deterministic overload
// policies, and expires queued requests whose freshness deadline
// passed before the pipeline could dispatch them:
//
//   kShedOldest — on a full queue, drop the OLDEST queued request and
//     admit the newcomer. Interactive default: the newest view is the
//     one the client is looking at; everything older is already stale.
//   kRejectNew — on a full queue, refuse the arriving request and keep
//     the queue as is. FIFO-fair: work already accepted is never
//     abandoned.
//
// With a quality policy whose degrade_before_shed flag is set, a full
// queue first steps the session's quality CLASS one rung down the
// ladder (quality::step_down, clamped at the policy's max_rung) and
// admits the newcomer beyond the cap — trading fidelity for
// completeness instead of dropping work. The deeper classes serve
// faster (kStale re-serves the session's last image in zero virtual
// time), so the queue drains and the service loop steps the class
// back up. Every step emits a kDegrade instant span and increments
// SessionStats::quality_degrades.
//
// Both policies are pure functions of (queue state, request), so a
// fixed arrival schedule always sheds the same requests — the service
// goldens pin that. Every decision increments the session's counters
// (comm::SessionStats) and, when tracing is armed, emits an instant
// span (kAdmit / kShed) so overload is visible in Perfetto, not just
// in aggregate.
#pragma once

#include <string>
#include <vector>

#include "rtc/obs/span.hpp"
#include "rtc/quality/quality.hpp"
#include "rtc/service/session.hpp"

namespace rtc::service {

enum class AdmissionPolicy {
  kShedOldest,  ///< full queue: drop oldest, admit newest
  kRejectNew,   ///< full queue: refuse the arrival
};

/// Parses "shed-oldest" / "reject-new" (the CLI's --admission values);
/// RTC_CHECKs on anything else.
[[nodiscard]] AdmissionPolicy parse_admission_policy(const std::string& s);
[[nodiscard]] const char* admission_policy_name(AdmissionPolicy p);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionPolicy policy, bool record_spans,
                               quality::QualityPolicy quality = {})
      : policy_(policy),
        record_spans_(record_spans),
        quality_(quality) {}

  /// Offers `r` to its session's queue at virtual time `now`,
  /// applying the overload policy at the cap. Updates the session's
  /// counters and appends any instant spans to `spans`.
  void offer(Session& s, const Request& r, double now,
             std::vector<obs::Span>& spans);

  /// Drops queued requests of `s` whose freshness deadline expired by
  /// `now` (dispatch-time check; the queue is FIFO so only the front
  /// can be expired). Returns the number dropped.
  int expire(Session& s, double now, std::vector<obs::Span>& spans);

  [[nodiscard]] AdmissionPolicy policy() const { return policy_; }

 private:
  /// aux codes for kShed spans (see obs::SpanKind::kShed).
  enum ShedCause : std::int64_t {
    kCauseReject = 0,
    kCauseShedOldest = 1,
    kCauseExpired = 2,
  };

  void note_shed(Session& s, double now, ShedCause cause,
                 std::vector<obs::Span>& spans);

  AdmissionPolicy policy_;
  bool record_spans_;
  quality::QualityPolicy quality_;
};

}  // namespace rtc::service
