#include "rtc/service/admission.hpp"

#include "rtc/common/check.hpp"

namespace rtc::service {

AdmissionPolicy parse_admission_policy(const std::string& s) {
  if (s == "shed-oldest") return AdmissionPolicy::kShedOldest;
  if (s == "reject-new") return AdmissionPolicy::kRejectNew;
  RTC_CHECK_MSG(false, "unknown admission policy (want shed-oldest or "
                       "reject-new)");
  return AdmissionPolicy::kShedOldest;
}

const char* admission_policy_name(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kShedOldest:
      return "shed-oldest";
    case AdmissionPolicy::kRejectNew:
      return "reject-new";
  }
  return "?";
}

namespace {

obs::Span instant(obs::SpanKind kind, int session, std::int64_t aux,
                  double now) {
  obs::Span s;
  s.kind = kind;
  s.step = session;
  s.aux = aux;
  s.v_begin = now;
  s.v_end = now;
  return s;
}

}  // namespace

void AdmissionController::note_shed(Session& s, double now, ShedCause cause,
                                    std::vector<obs::Span>& spans) {
  switch (cause) {
    case kCauseReject:
      s.stats.rejected += 1;
      break;
    case kCauseShedOldest:
      s.stats.shed += 1;
      break;
    case kCauseExpired:
      s.stats.expired += 1;
      break;
  }
  if (record_spans_)
    spans.push_back(instant(obs::SpanKind::kShed, s.id(), cause, now));
}

void AdmissionController::offer(Session& s, const Request& r, double now,
                                std::vector<obs::Span>& spans) {
  RTC_CHECK(r.session == s.id());
  s.stats.arrivals += 1;
  const int cap = s.config.queue_cap;
  RTC_CHECK_MSG(cap >= 1, "session queue cap must be at least 1");
  if (static_cast<int>(s.queue.size()) >= cap) {
    if (quality_.degrade_before_shed && quality_.engaged()) {
      // Degrade-before-shed: trade fidelity for completeness. Step the
      // session's quality class one rung down (clamped at the policy's
      // max_rung) and admit beyond the cap — the deeper classes serve
      // faster, so the queue drains instead of overflowing, and no
      // request is ever dropped.
      const quality::Rung next =
          quality::step_down(s.quality_class, quality_.max_rung);
      if (next != s.quality_class) {
        s.quality_class = next;
        s.stats.quality_degrades += 1;
        if (static_cast<int>(next) > s.stats.quality_floor)
          s.stats.quality_floor = static_cast<int>(next);
        if (record_spans_)
          spans.push_back(instant(obs::SpanKind::kDegrade, s.id(),
                                  static_cast<std::int64_t>(next), now));
      }
    } else if (policy_ == AdmissionPolicy::kRejectNew) {
      note_shed(s, now, kCauseReject, spans);
      return;
    } else {
      // kShedOldest: the front is the oldest — evict it to make room.
      s.queue.pop_front();
      note_shed(s, now, kCauseShedOldest, spans);
    }
  }
  s.queue.push_back(r);
  s.stats.admitted += 1;
  const int depth = static_cast<int>(s.queue.size());
  if (depth > s.stats.queue_peak) s.stats.queue_peak = depth;
  if (record_spans_)
    spans.push_back(instant(obs::SpanKind::kAdmit, s.id(), depth, now));
}

int AdmissionController::expire(Session& s, double now,
                                std::vector<obs::Span>& spans) {
  const double deadline = s.config.deadline;
  if (deadline <= 0.0) return 0;
  int dropped = 0;
  while (!s.queue.empty() && now - s.queue.front().arrival > deadline) {
    s.queue.pop_front();
    note_shed(s, now, kCauseExpired, spans);
    ++dropped;
  }
  return dropped;
}

}  // namespace rtc::service
