// Seeded synthetic traffic for the render service.
//
// TrafficGen produces an OPEN-LOOP arrival schedule on the virtual
// clock: each session emits view requests at exponential (Poisson-
// process) interarrivals around a configured mean rate, with
// occasional heavy-tailed "think time" pauses (a Pareto tail — the
// user stopped orbiting to stare at the image) stretching the gap.
// Open-loop means arrivals do not wait for service: when the pipeline
// falls behind, queues grow and the admission policy decides who pays
// — exactly the overload behavior the front end exists to manage.
//
// All randomness is hash-derived (splitmix64 over (seed, session,
// index) — the same idiom as comm::FaultPlan), so the schedule is a
// pure function of the config: byte-identical across runs, platforms,
// and executors, never dependent on generation order.
//
// Every session walks the same yaw orbit (yaw0 + step per request,
// wrapped to [0, 360)); sessions are offset in time, not in path, so
// nearby arrivals often ask for nearby views — the coalescing the
// RequestBatcher exploits. Priorities cycle session % classes.
#pragma once

#include <cstdint>
#include <vector>

#include "rtc/service/session.hpp"

namespace rtc::service {

struct TrafficConfig {
  int sessions = 8;
  std::int64_t requests_per_session = 16;
  double arrival_rate = 50.0;  ///< mean requests/s per session (virtual)
  std::uint64_t seed = 1;
  /// Heavy-tail think times: with probability think_prob a gap is
  /// stretched by a Pareto(alpha) pause of at least think_min seconds.
  double think_prob = 0.125;
  double think_min = 0.05;
  double think_alpha = 1.5;  ///< tail index; <= 2 = infinite variance
  /// Shared camera orbit: session s's request k asks for
  /// yaw0 + step*k (mod 360) at the configured pitch.
  double yaw0_deg = 0.0;
  double yaw_step_deg = 5.0;
  double pitch_deg = 15.0;
  /// Sessions cycle through this many priority classes (s % classes).
  int priority_classes = 1;
};

class TrafficGen {
 public:
  explicit TrafficGen(const TrafficConfig& cfg) : cfg_(cfg) {}

  /// The full arrival schedule, sorted by (arrival, session, seq) —
  /// a deterministic function of the config alone.
  [[nodiscard]] std::vector<Request> generate() const;

  /// Priority class of session `s` (s % priority_classes).
  [[nodiscard]] int priority_of(int session) const {
    return session % (cfg_.priority_classes >= 1 ? cfg_.priority_classes : 1);
  }

  [[nodiscard]] const TrafficConfig& config() const { return cfg_; }

 private:
  TrafficConfig cfg_;
};

}  // namespace rtc::service
