#include "rtc/service/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "rtc/common/check.hpp"

namespace rtc::service {

namespace {

// splitmix64 — the same stable hash idiom as comm::FaultPlan, so the
// schedule is a pure function of (seed, session, index).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix(h ^ (v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2)));
}

double to_unit(std::uint64_t h) {
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

// Per-decision salts: the interarrival draw, the think-time coin, and
// the think-time magnitude of one gap are independent.
constexpr std::uint64_t kSaltGap = 0xA1;
constexpr std::uint64_t kSaltThinkCoin = 0xA2;
constexpr std::uint64_t kSaltThinkMag = 0xA3;

double draw(std::uint64_t seed, int session, std::int64_t k,
            std::uint64_t salt) {
  std::uint64_t h = mix(seed);
  h = combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(session)));
  h = combine(h, static_cast<std::uint64_t>(k));
  h = combine(h, salt);
  return to_unit(h);
}

}  // namespace

std::vector<Request> TrafficGen::generate() const {
  RTC_CHECK_MSG(cfg_.sessions >= 1, "need at least one session");
  RTC_CHECK_MSG(cfg_.requests_per_session >= 1,
                "need at least one request per session");
  RTC_CHECK_MSG(cfg_.arrival_rate > 0.0, "arrival rate must be positive");
  RTC_CHECK_MSG(cfg_.think_alpha > 0.0, "Pareto tail index must be positive");

  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(cfg_.sessions) *
              static_cast<std::size_t>(cfg_.requests_per_session));
  for (int s = 0; s < cfg_.sessions; ++s) {
    double t = 0.0;
    for (std::int64_t k = 0; k < cfg_.requests_per_session; ++k) {
      // Exponential interarrival at the configured mean rate; -log1p
      // of a [0,1) draw never sees log(0).
      const double u = draw(cfg_.seed, s, k, kSaltGap);
      double gap = -std::log1p(-u) / cfg_.arrival_rate;
      if (cfg_.think_prob > 0.0 &&
          draw(cfg_.seed, s, k, kSaltThinkCoin) < cfg_.think_prob) {
        // Pareto(alpha) pause: think_min * (1-v)^(-1/alpha). Heavy
        // tail — occasional pauses are far longer than the mean gap.
        const double v = draw(cfg_.seed, s, k, kSaltThinkMag);
        gap += cfg_.think_min * std::pow(1.0 - v, -1.0 / cfg_.think_alpha);
      }
      t += gap;
      Request r;
      r.session = s;
      r.seq = k;
      r.arrival = t;
      r.yaw_deg = std::fmod(
          cfg_.yaw0_deg + cfg_.yaw_step_deg * static_cast<double>(k), 360.0);
      r.pitch_deg = cfg_.pitch_deg;
      out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(), [](const Request& a, const Request& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.session != b.session) return a.session < b.session;
    return a.seq < b.seq;
  });
  return out;
}

}  // namespace rtc::service
