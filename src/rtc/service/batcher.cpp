#include "rtc/service/batcher.hpp"

#include <cmath>

#include "rtc/common/check.hpp"

namespace rtc::service {

ViewKey quantize_view(const Request& r, double quant_deg) {
  ViewKey k;
  if (quant_deg <= 0.0) {
    // Coalescing disabled: key on the request identity so nothing
    // ever matches (each request is its own "view").
    k.yaw = (static_cast<std::int64_t>(r.session) << 32) | r.seq;
    k.pitch = 0;
    return k;
  }
  k.yaw = std::llround(r.yaw_deg / quant_deg);
  k.pitch = std::llround(r.pitch_deg / quant_deg);
  return k;
}

Batch RequestBatcher::next_batch(std::vector<Session>& sessions) {
  // Lead selection: lowest priority value wins; within the class, scan
  // session ids starting just past the class's last lead (round-robin
  // fairness under sustained load).
  int best_priority = 0;
  bool found = false;
  for (const Session& s : sessions) {
    if (s.idle()) continue;
    if (!found || s.config.priority < best_priority) {
      best_priority = s.config.priority;
      found = true;
    }
  }
  RTC_CHECK_MSG(found, "next_batch called with every queue empty");

  const int n = static_cast<int>(sessions.size());
  const int start = rr_cursor_[best_priority] % n;
  int lead_id = -1;
  for (int i = 0; i < n; ++i) {
    const int id = (start + i) % n;
    const Session& s = sessions[static_cast<std::size_t>(id)];
    if (!s.idle() && s.config.priority == best_priority) {
      lead_id = id;
      break;
    }
  }
  RTC_CHECK(lead_id >= 0);
  rr_cursor_[best_priority] = lead_id + 1;

  Batch b;
  Session& lead = sessions[static_cast<std::size_t>(lead_id)];
  b.lead = lead.queue.front();
  lead.queue.pop_front();
  lead.stats.batches_led += 1;

  const ViewKey key = quantize_view(b.lead, quant_deg_);
  if (quant_deg_ > 0.0) {
    for (Session& s : sessions) {
      if (s.id() == lead_id || s.idle()) continue;
      if (quantize_view(s.queue.front(), quant_deg_) == key) {
        b.riders.push_back(s.queue.front());
        s.queue.pop_front();
        s.stats.batches_joined += 1;
      }
    }
  }
  return b;
}

}  // namespace rtc::service
