// TRLE for RGBA blocks — the paper's Section 3 scheme with a 4-byte
// payload per non-blank pixel. The code stream (2x2 occupancy
// templates, run nibble) is byte-identical to the gray codec's for the
// same occupancy pattern, demonstrating that the structure/payload
// split generalizes to color unchanged.
#include "rtc/color/render.hpp"
#include "rtc/common/check.hpp"
#include "rtc/common/wire.hpp"
#include "rtc/compress/cells.hpp"

namespace rtc::color {

namespace {
constexpr int kRunShift = 4;
constexpr std::uint8_t kTemplateMask = 0x0f;
constexpr int kMaxRun = 16;
}  // namespace

std::vector<std::byte> trle_encode_color(std::span<const RgbA8> px,
                                         int image_width,
                                         std::int64_t span_begin) {
  std::vector<std::byte> codes;
  std::vector<std::byte> payload;
  int run = 0;
  std::uint8_t run_template = 0;

  compress::for_each_cell(
      static_cast<std::int64_t>(px.size()), image_width, span_begin,
      [&](const compress::CellPixels& cell) {
        std::uint8_t tmpl = 0;
        for (int b = 0; b < 4; ++b) {
          const std::int64_t i = cell.index[b];
          if (i >= 0 && !is_blank(px[static_cast<std::size_t>(i)]))
            tmpl = static_cast<std::uint8_t>(tmpl | (1u << b));
        }
        if (run > 0 && tmpl == run_template && run < kMaxRun) {
          ++run;
        } else {
          if (run > 0)
            codes.push_back(static_cast<std::byte>(
                ((run - 1) << kRunShift) | run_template));
          run = 1;
          run_template = tmpl;
        }
        for (int b = 0; b < 4; ++b) {
          const std::int64_t i = cell.index[b];
          if (i >= 0 && (tmpl & (1u << b))) {
            const RgbA8 p = px[static_cast<std::size_t>(i)];
            payload.push_back(static_cast<std::byte>(p.r));
            payload.push_back(static_cast<std::byte>(p.g));
            payload.push_back(static_cast<std::byte>(p.b));
            payload.push_back(static_cast<std::byte>(p.a));
          }
        }
      });
  if (run > 0)
    codes.push_back(
        static_cast<std::byte>(((run - 1) << kRunShift) | run_template));

  std::vector<std::byte> out;
  out.reserve(4 + codes.size() + payload.size());
  const auto n = static_cast<std::uint32_t>(codes.size());
  for (int s = 0; s < 4; ++s)
    out.push_back(static_cast<std::byte>((n >> (8 * s)) & 0xffu));
  out.insert(out.end(), codes.begin(), codes.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void trle_decode_color(std::span<const std::byte> bytes,
                       std::span<RgbA8> out, int image_width,
                       std::int64_t span_begin) {
  // Reader-checked header: the legacy `4 + n_codes <= size` test
  // wrapped for counts near UINT32_MAX and let subspan run off the
  // buffer.
  wire::WireReader r(bytes);
  const std::uint32_t n_codes = r.u32("TRLE code count");
  const std::span<const std::byte> codes =
      r.bytes(n_codes, "TRLE code block");
  const std::span<const std::byte> payload = r.rest();

  std::size_t code_i = 0;
  int remaining = 0;
  std::uint8_t tmpl = 0;
  std::size_t pay_i = 0;

  compress::for_each_cell(
      static_cast<std::int64_t>(out.size()), image_width, span_begin,
      [&](const compress::CellPixels& cell) {
        if (remaining == 0) {
          wire::require(code_i < codes.size(),
                        wire::DecodeError::Kind::kTruncated,
                        "TRLE code underrun");
          const auto code = static_cast<std::uint8_t>(codes[code_i++]);
          remaining = (code >> kRunShift) + 1;
          tmpl = code & kTemplateMask;
        }
        --remaining;
        for (int b = 0; b < 4; ++b) {
          const std::int64_t i = cell.index[b];
          if (i < 0) continue;
          if (tmpl & (1u << b)) {
            wire::require(pay_i + 4 <= payload.size(),
                          wire::DecodeError::Kind::kTruncated,
                          "TRLE payload underrun");
            out[static_cast<std::size_t>(i)] =
                RgbA8{static_cast<std::uint8_t>(payload[pay_i]),
                      static_cast<std::uint8_t>(payload[pay_i + 1]),
                      static_cast<std::uint8_t>(payload[pay_i + 2]),
                      static_cast<std::uint8_t>(payload[pay_i + 3])};
            pay_i += 4;
          } else {
            out[static_cast<std::size_t>(i)] = kBlank;
          }
        }
      });
  wire::require(remaining == 0 && code_i == codes.size(),
                wire::DecodeError::Kind::kTrailing,
                "TRLE code stream overrun");
  wire::require(pay_i == payload.size(),
                wire::DecodeError::Kind::kTrailing,
                "trailing TRLE payload");
}

}  // namespace rtc::color
