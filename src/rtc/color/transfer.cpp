#include "rtc/color/transfer.hpp"

#include <algorithm>

#include "rtc/common/check.hpp"

namespace rtc::color {

ColorTransferFunction::ColorTransferFunction(std::vector<Node> nodes) {
  RTC_CHECK_MSG(!nodes.empty(), "transfer function needs nodes");
  std::sort(nodes.begin(), nodes.end(),
            [](const Node& a, const Node& b) { return a.value < b.value; });
  for (int v = 0; v < 256; ++v) {
    const auto val = static_cast<std::uint8_t>(v);
    Node n = nodes.front();
    if (val >= nodes.back().value) {
      n = nodes.back();
    } else if (val > nodes.front().value) {
      for (std::size_t i = 1; i < nodes.size(); ++i) {
        if (val > nodes[i].value) continue;
        const Node& lo = nodes[i - 1];
        const Node& hi = nodes[i];
        const float t = hi.value == lo.value
                            ? 0.0f
                            : static_cast<float>(val - lo.value) /
                                  static_cast<float>(hi.value - lo.value);
        n = Node{val, lo.r + t * (hi.r - lo.r), lo.g + t * (hi.g - lo.g),
                 lo.b + t * (hi.b - lo.b),
                 lo.opacity + t * (hi.opacity - lo.opacity)};
        break;
      }
    }
    lut_[static_cast<std::size_t>(v)] =
        RgbAF{n.r * n.opacity, n.g * n.opacity, n.b * n.opacity,
              n.opacity};
  }
}

ColorTransferFunction phantom_color_transfer(const std::string& dataset) {
  if (dataset == "engine") {
    return ColorTransferFunction({
        {0, 0, 0, 0, 0.0f},
        {120, 0, 0, 0, 0.0f},
        {150, 0.8f, 0.4f, 0.1f, 0.35f},   // rusty casting
        {255, 1.0f, 0.95f, 0.8f, 0.95f},  // bright metal
    });
  }
  if (dataset == "brain") {
    return ColorTransferFunction({
        {0, 0, 0, 0, 0.0f},
        {40, 0, 0, 0, 0.0f},
        {60, 0.1f, 0.2f, 0.8f, 0.10f},   // CSF blue
        {120, 0.8f, 0.5f, 0.45f, 0.3f},  // gray matter
        {255, 1.0f, 0.9f, 0.85f, 0.6f},  // white matter
    });
  }
  if (dataset == "head") {
    return ColorTransferFunction({
        {0, 0, 0, 0, 0.0f},
        {60, 0, 0, 0, 0.0f},
        {100, 0.85f, 0.45f, 0.35f, 0.25f},  // tissue red
        {200, 0.9f, 0.75f, 0.55f, 0.5f},
        {255, 1.0f, 0.98f, 0.9f, 0.95f},    // bone white
    });
  }
  throw ContractError("unknown phantom: " + dataset);
}

}  // namespace rtc::color
