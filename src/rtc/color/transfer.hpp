// Color transfer functions: voxel value -> premultiplied RGBA.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "rtc/color/pixel.hpp"

namespace rtc::color {

class ColorTransferFunction {
 public:
  struct Node {
    std::uint8_t value;
    float r, g, b;    ///< emitted color in [0, 1]
    float opacity;    ///< per-sample opacity in [0, 1]
  };

  explicit ColorTransferFunction(std::vector<Node> nodes);

  [[nodiscard]] RgbAF classify(std::uint8_t v) const { return lut_[v]; }
  [[nodiscard]] bool transparent(std::uint8_t v) const {
    return lut_[v].a <= 1.0f / 512.0f;
  }

 private:
  std::array<RgbAF, 256> lut_{};
};

/// Color presets for the three phantoms: bone/metal in warm whites,
/// soft tissue in reds, CSF in blue — the usual medical-viz look.
[[nodiscard]] ColorTransferFunction phantom_color_transfer(
    const std::string& dataset);

}  // namespace rtc::color
