// Color rendering and composition (extension module).
//
// Self-contained RGBA path mirroring the grayscale pipeline: a color
// ray-caster over the same volumes/partitions, TRLE generalized to
// 4-byte payloads (the 2x2 occupancy templates are color-agnostic —
// the paper's structure/payload split carries over unchanged), and a
// rotate-tiling compositor driven by the exact same core schedule.
#pragma once

#include <string>
#include <vector>

#include "rtc/color/image.hpp"
#include "rtc/color/transfer.hpp"
#include "rtc/comm/world.hpp"
#include "rtc/core/schedule.hpp"
#include "rtc/render/camera.hpp"
#include "rtc/volume/volume.hpp"

namespace rtc::color {

/// Orthographic color ray-caster over a brick of the volume.
[[nodiscard]] RgbaImage render_raycast_color(
    const vol::Volume& v, const ColorTransferFunction& tf,
    const vol::Brick& region, const render::OrthoCamera& cam);

/// TRLE for RGBA blocks: identical code stream to the gray codec
/// (2x2 occupancy templates + run nibble); payload is 4 bytes per
/// non-blank pixel.
[[nodiscard]] std::vector<std::byte> trle_encode_color(
    std::span<const RgbA8> px, int image_width, std::int64_t span_begin);
void trle_decode_color(std::span<const std::byte> bytes,
                       std::span<RgbA8> out, int image_width,
                       std::int64_t span_begin);

/// Rotate-tiling composition of color partials over `comm` (collective;
/// same schedule, wire rules and gather semantics as the gray
/// RtCompositor). Returns the assembled image at rank 0.
[[nodiscard]] RgbaImage composite_rt_color(
    comm::Comm& comm, const RgbaImage& partial, int initial_blocks,
    bool use_trle, img::BlendMode blend = img::BlendMode::kOver);

}  // namespace rtc::color
