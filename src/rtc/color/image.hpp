// Row-major RGBA image and its bulk operations.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "rtc/color/pixel.hpp"
#include "rtc/common/check.hpp"
#include "rtc/image/image.hpp"
#include "rtc/image/ops.hpp"

namespace rtc::color {

class RgbaImage {
 public:
  RgbaImage() = default;
  RgbaImage(int width, int height) : w_(width), h_(height) {
    RTC_CHECK(width >= 0 && height >= 0);
    px_.resize(static_cast<std::size_t>(w_) * static_cast<std::size_t>(h_));
  }

  [[nodiscard]] int width() const { return w_; }
  [[nodiscard]] int height() const { return h_; }
  [[nodiscard]] std::int64_t pixel_count() const {
    return static_cast<std::int64_t>(px_.size());
  }

  [[nodiscard]] RgbA8& at(int x, int y) {
    RTC_DCHECK(x >= 0 && x < w_ && y >= 0 && y < h_);
    return px_[static_cast<std::size_t>(y) * static_cast<std::size_t>(w_) +
               static_cast<std::size_t>(x)];
  }
  [[nodiscard]] const RgbA8& at(int x, int y) const {
    return const_cast<RgbaImage*>(this)->at(x, y);
  }

  [[nodiscard]] std::span<RgbA8> pixels() { return px_; }
  [[nodiscard]] std::span<const RgbA8> pixels() const { return px_; }

  [[nodiscard]] std::span<RgbA8> view(img::PixelSpan s) {
    RTC_CHECK(s.begin >= 0 && s.end <= pixel_count() && s.begin <= s.end);
    return std::span<RgbA8>(px_).subspan(static_cast<std::size_t>(s.begin),
                                         static_cast<std::size_t>(s.size()));
  }
  [[nodiscard]] std::span<const RgbA8> view(img::PixelSpan s) const {
    return const_cast<RgbaImage*>(this)->view(s);
  }

  friend bool operator==(const RgbaImage&, const RgbaImage&) = default;

 private:
  int w_ = 0, h_ = 0;
  std::vector<RgbA8> px_;
};

/// dst = dst OVER src / src OVER dst / per-channel max, per BlendMode.
void blend_in_place(std::span<RgbA8> dst, std::span<const RgbA8> src,
                    img::BlendMode mode, bool src_front);

[[nodiscard]] std::int64_t count_non_blank(std::span<const RgbA8> px);

[[nodiscard]] int max_channel_diff(const RgbaImage& a, const RgbaImage& b);

/// Sequential front-to-back reference composite.
[[nodiscard]] RgbaImage composite_reference(
    std::span<const RgbaImage> parts,
    img::BlendMode mode = img::BlendMode::kOver);

/// 4 bytes per pixel on the wire.
inline constexpr std::size_t kBytesPerPixel = 4;
[[nodiscard]] std::vector<std::byte> serialize_pixels(
    std::span<const RgbA8> px);
void deserialize_pixels(std::span<const std::byte> bytes,
                        std::span<RgbA8> px);

/// Binary PPM (P6) of the color channels (premultiplied, black
/// background).
void write_ppm(const RgbaImage& image, const std::string& path);

}  // namespace rtc::color
