#include "rtc/color/image.hpp"

#include <cstdlib>
#include <fstream>

namespace rtc::color {

void blend_in_place(std::span<RgbA8> dst, std::span<const RgbA8> src,
                    img::BlendMode mode, bool src_front) {
  RTC_CHECK(dst.size() == src.size());
  switch (mode) {
    case img::BlendMode::kOver:
      if (src_front) {
        for (std::size_t i = 0; i < dst.size(); ++i)
          dst[i] = over(src[i], dst[i]);
      } else {
        for (std::size_t i = 0; i < dst.size(); ++i)
          dst[i] = over(dst[i], src[i]);
      }
      break;
    case img::BlendMode::kMax:
      for (std::size_t i = 0; i < dst.size(); ++i)
        dst[i] = max_blend(dst[i], src[i]);
      break;
  }
}

std::int64_t count_non_blank(std::span<const RgbA8> px) {
  std::int64_t n = 0;
  for (const RgbA8 p : px) n += is_blank(p) ? 0 : 1;
  return n;
}

int max_channel_diff(const RgbaImage& a, const RgbaImage& b) {
  RTC_CHECK(a.width() == b.width() && a.height() == b.height());
  int worst = 0;
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    worst = std::max(worst, std::abs(int{pa[i].r} - int{pb[i].r}));
    worst = std::max(worst, std::abs(int{pa[i].g} - int{pb[i].g}));
    worst = std::max(worst, std::abs(int{pa[i].b} - int{pb[i].b}));
    worst = std::max(worst, std::abs(int{pa[i].a} - int{pb[i].a}));
  }
  return worst;
}

RgbaImage composite_reference(std::span<const RgbaImage> parts,
                              img::BlendMode mode) {
  RTC_CHECK(!parts.empty());
  RgbaImage out = parts[0];
  for (std::size_t r = 1; r < parts.size(); ++r) {
    blend_in_place(out.pixels(), parts[r].pixels(), mode,
                   /*src_front=*/false);
  }
  return out;
}

std::vector<std::byte> serialize_pixels(std::span<const RgbA8> px) {
  std::vector<std::byte> out;
  out.reserve(px.size() * kBytesPerPixel);
  for (const RgbA8 p : px) {
    out.push_back(static_cast<std::byte>(p.r));
    out.push_back(static_cast<std::byte>(p.g));
    out.push_back(static_cast<std::byte>(p.b));
    out.push_back(static_cast<std::byte>(p.a));
  }
  return out;
}

void deserialize_pixels(std::span<const std::byte> bytes,
                        std::span<RgbA8> px) {
  RTC_CHECK(bytes.size() == px.size() * kBytesPerPixel);
  for (std::size_t i = 0; i < px.size(); ++i) {
    px[i].r = static_cast<std::uint8_t>(bytes[4 * i]);
    px[i].g = static_cast<std::uint8_t>(bytes[4 * i + 1]);
    px[i].b = static_cast<std::uint8_t>(bytes[4 * i + 2]);
    px[i].a = static_cast<std::uint8_t>(bytes[4 * i + 3]);
  }
}

void write_ppm(const RgbaImage& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  RTC_CHECK_MSG(out.good(), "cannot open for write: " + path);
  out << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  for (const RgbA8 p : image.pixels()) {
    const char rgb[3] = {static_cast<char>(p.r), static_cast<char>(p.g),
                         static_cast<char>(p.b)};
    out.write(rgb, 3);
  }
  RTC_CHECK_MSG(out.good(), "short write: " + path);
}

}  // namespace rtc::color
