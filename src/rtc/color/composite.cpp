// Rotate-tiling composition for color partials, driven by the exact
// same core schedule as the gray compositor — the schedule is pixel-
// format agnostic; only serialization and the blend kernel change.
#include "rtc/color/render.hpp"
#include "rtc/common/check.hpp"
#include "rtc/image/tiling.hpp"
#include "rtc/obs/span.hpp"

namespace rtc::color {

namespace {

void send_color_block(comm::Comm& comm, int dst, int tag,
                      std::span<const RgbA8> px, int width,
                      std::int64_t begin, bool use_trle) {
  const std::int64_t w0 =
      comm.trace().enabled() ? obs::wall_now_ns() : -1;
  std::vector<std::byte> bytes =
      use_trle ? trle_encode_color(px, width, begin)
               : serialize_pixels(px);
  const auto raw = static_cast<std::int64_t>(px.size() * kBytesPerPixel);
  if (use_trle) {
    comm.charge_span(obs::SpanKind::kEncode, tag,
                     comm.model().tcodec_pixel *
                         static_cast<double>(px.size()),
                     static_cast<std::int64_t>(bytes.size()), raw, w0);
  } else {
    comm.note_span(obs::SpanKind::kEncode, tag,
                   static_cast<std::int64_t>(bytes.size()), raw);
  }
  comm.send(dst, tag, std::move(bytes));
}

void recv_color_block(comm::Comm& comm, int src, int tag,
                      std::span<RgbA8> out, int width,
                      std::int64_t begin, bool use_trle) {
  const std::vector<std::byte> bytes = comm.recv(src, tag);
  if (use_trle) {
    const std::int64_t w0 =
        comm.trace().enabled() ? obs::wall_now_ns() : -1;
    trle_decode_color(bytes, out, width, begin);
    comm.charge_span(obs::SpanKind::kDecode, tag,
                     comm.model().tcodec_pixel *
                         static_cast<double>(out.size()),
                     static_cast<std::int64_t>(bytes.size()),
                     static_cast<std::int64_t>(out.size()), w0);
  } else {
    deserialize_pixels(bytes, out);
    comm.note_span(obs::SpanKind::kDecode, tag,
                   static_cast<std::int64_t>(bytes.size()),
                   static_cast<std::int64_t>(out.size()));
  }
}

}  // namespace

RgbaImage composite_rt_color(comm::Comm& comm, const RgbaImage& partial,
                             int initial_blocks, bool use_trle,
                             img::BlendMode blend) {
  const int p = comm.size();
  const int r = comm.rank();
  const core::RtSchedule sched = core::build_rt_schedule(
      p, initial_blocks, core::RtVariant::kGeneralized);
  const img::Tiling tiling(partial.pixel_count(), initial_blocks);

  RgbaImage buf = partial;
  std::vector<RgbA8> incoming;
  for (std::size_t s = 0; s < sched.steps.size(); ++s) {
    const core::RtStep& step = sched.steps[s];
    const int tag = static_cast<int>(s) + 1;
    for (const core::Merge& m : step.merges) {
      if (m.sender != r) continue;
      const img::PixelSpan span = tiling.block(step.depth, m.block);
      send_color_block(comm, m.receiver, tag, buf.view(span),
                       partial.width(), span.begin, use_trle);
    }
    for (const core::Merge& m : step.merges) {
      if (m.receiver != r) continue;
      const img::PixelSpan span = tiling.block(step.depth, m.block);
      incoming.resize(static_cast<std::size_t>(span.size()));
      recv_color_block(comm, m.sender, tag, incoming, partial.width(),
                       span.begin, use_trle);
      blend_in_place(buf.view(span), incoming, blend, m.sender_front);
      comm.charge_over(span.size());
    }
    comm.mark(tag);
  }

  // Gather the owned final blocks to rank 0: [u32 count] then per
  // block [u32 depth][u64 index][raw pixels].
  const auto owned = sched.owned_blocks(r);
  std::vector<std::byte> payload;
  auto put_u32 = [&](std::uint32_t v) {
    for (int b = 0; b < 4; ++b)
      payload.push_back(static_cast<std::byte>((v >> (8 * b)) & 0xffu));
  };
  auto put_u64 = [&](std::uint64_t v) {
    for (int b = 0; b < 8; ++b)
      payload.push_back(static_cast<std::byte>((v >> (8 * b)) & 0xffu));
  };
  put_u32(static_cast<std::uint32_t>(owned.size()));
  for (const auto& [depth, index] : owned) {
    put_u32(static_cast<std::uint32_t>(depth));
    put_u64(static_cast<std::uint64_t>(index));
    const std::vector<std::byte> body =
        serialize_pixels(buf.view(tiling.block(depth, index)));
    payload.insert(payload.end(), body.begin(), body.end());
  }

  std::vector<std::vector<std::byte>> all =
      comm::gather(comm, /*root=*/0, /*tag=*/1'000'000,
                   std::move(payload));
  if (r != 0) return RgbaImage{};

  RgbaImage out(partial.width(), partial.height());
  for (const std::vector<std::byte>& bufr : all) {
    std::span<const std::byte> rest(bufr);
    auto get_u32 = [&]() {
      std::uint32_t v = 0;
      for (int b = 0; b < 4; ++b)
        v |= static_cast<std::uint32_t>(rest[static_cast<std::size_t>(b)])
             << (8 * b);
      rest = rest.subspan(4);
      return v;
    };
    auto get_u64 = [&]() {
      std::uint64_t v = 0;
      for (int b = 0; b < 8; ++b)
        v |= std::uint64_t{
            static_cast<std::uint8_t>(rest[static_cast<std::size_t>(b)])}
             << (8 * b);
      rest = rest.subspan(8);
      return v;
    };
    const std::uint32_t count = get_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto depth = static_cast<int>(get_u32());
      const auto index = static_cast<std::int64_t>(get_u64());
      const img::PixelSpan span = tiling.block(depth, index);
      const std::size_t bytes =
          static_cast<std::size_t>(span.size()) * kBytesPerPixel;
      RTC_CHECK(rest.size() >= bytes);
      deserialize_pixels(rest.first(bytes), out.view(span));
      rest = rest.subspan(bytes);
    }
    RTC_CHECK(rest.empty());
  }
  return out;
}

}  // namespace rtc::color
