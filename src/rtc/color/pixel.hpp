// RGBA color pixels (extension: the paper composites gray images; a
// production release needs color). Premultiplied alpha, like GrayA8.
#pragma once

#include <compare>
#include <cstdint>

#include "rtc/image/pixel.hpp"

namespace rtc::color {

/// Premultiplied RGBA, 8 bits per channel.
struct RgbA8 {
  std::uint8_t r = 0, g = 0, b = 0, a = 0;
  friend auto operator<=>(const RgbA8&, const RgbA8&) = default;
};

inline constexpr RgbA8 kBlank{};

[[nodiscard]] constexpr bool is_blank(RgbA8 p) {
  return p.r == 0 && p.g == 0 && p.b == 0 && p.a == 0;
}

/// Porter-Duff "over" for premultiplied RGBA.
[[nodiscard]] constexpr RgbA8 over(RgbA8 front, RgbA8 back) {
  const std::uint32_t inv = 255u - front.a;
  return RgbA8{
      static_cast<std::uint8_t>(front.r + img::detail::mul255(back.r, inv)),
      static_cast<std::uint8_t>(front.g + img::detail::mul255(back.g, inv)),
      static_cast<std::uint8_t>(front.b + img::detail::mul255(back.b, inv)),
      static_cast<std::uint8_t>(front.a + img::detail::mul255(back.a, inv))};
}

/// Per-channel max (color MIP).
[[nodiscard]] constexpr RgbA8 max_blend(RgbA8 x, RgbA8 y) {
  return RgbA8{x.r > y.r ? x.r : y.r, x.g > y.g ? x.g : y.g,
               x.b > y.b ? x.b : y.b, x.a > y.a ? x.a : y.a};
}

/// Float RGBA for accumulation.
struct RgbAF {
  float r = 0, g = 0, b = 0, a = 0;
};

[[nodiscard]] constexpr RgbAF over(RgbAF front, RgbAF back) {
  const float inv = 1.0f - front.a;
  return RgbAF{front.r + inv * back.r, front.g + inv * back.g,
               front.b + inv * back.b, front.a + inv * back.a};
}

}  // namespace rtc::color
