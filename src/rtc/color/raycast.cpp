#include "rtc/color/render.hpp"

#include <cmath>

#include "rtc/common/check.hpp"
#include "rtc/render/renderer.hpp"
#include "rtc/render/rle_volume.hpp"

namespace rtc::color {

namespace {

RgbAF classify_at(const vol::Volume& v, const ColorTransferFunction& tf,
                  const vol::Brick& region, const render::AxisFrame& f,
                  int i, int j, int k) {
  int p[3];
  p[f.a] = i;
  p[f.b] = j;
  p[f.c] = k;
  if (!region.contains(p[0], p[1], p[2])) return RgbAF{};
  return tf.classify(v.at(p[0], p[1], p[2]));
}

RgbAF classify_bilinear(const vol::Volume& v,
                        const ColorTransferFunction& tf,
                        const vol::Brick& region,
                        const render::AxisFrame& f, double i_real,
                        double j_real, int k) {
  const int i0 = static_cast<int>(std::floor(i_real));
  const int j0 = static_cast<int>(std::floor(j_real));
  const auto ti = static_cast<float>(i_real - i0);
  const auto tj = static_cast<float>(j_real - j0);
  const RgbAF c00 = classify_at(v, tf, region, f, i0, j0, k);
  const RgbAF c10 = classify_at(v, tf, region, f, i0 + 1, j0, k);
  const RgbAF c01 = classify_at(v, tf, region, f, i0, j0 + 1, k);
  const RgbAF c11 = classify_at(v, tf, region, f, i0 + 1, j0 + 1, k);
  const float w00 = (1 - ti) * (1 - tj), w10 = ti * (1 - tj);
  const float w01 = (1 - ti) * tj, w11 = ti * tj;
  return RgbAF{w00 * c00.r + w10 * c10.r + w01 * c01.r + w11 * c11.r,
               w00 * c00.g + w10 * c10.g + w01 * c01.g + w11 * c11.g,
               w00 * c00.b + w10 * c10.b + w01 * c01.b + w11 * c11.b,
               w00 * c00.a + w10 * c10.a + w01 * c01.a + w11 * c11.a};
}

RgbA8 quantize(const RgbAF& p) {
  auto q = [](float x) {
    const float c = x < 0.0f ? 0.0f : (x > 1.0f ? 1.0f : x);
    return static_cast<std::uint8_t>(c * 255.0f + 0.5f);
  };
  return RgbA8{q(p.r), q(p.g), q(p.b), q(p.a)};
}

}  // namespace

RgbaImage render_raycast_color(const vol::Volume& v,
                               const ColorTransferFunction& tf,
                               const vol::Brick& region,
                               const render::OrthoCamera& cam) {
  RgbaImage out(cam.width, cam.height);
  const render::Vec3 d = cam.direction();
  const int c_ax = render::principal_axis(d);
  const render::AxisFrame f = render::axis_frame(c_ax);
  const double dc = d[f.c];
  RTC_CHECK(std::abs(dc) > 1e-9);
  const int c0 = f.c == 0 ? region.x0 : (f.c == 1 ? region.y0 : region.z0);
  const int c1 = f.c == 0 ? region.x1 : (f.c == 1 ? region.y1 : region.z1);
  const bool forward = dc > 0.0;

  const render::Vec3 r = cam.right();
  const render::Vec3 u = cam.up();
  for (int iy = 0; iy < cam.height; ++iy) {
    for (int ix = 0; ix < cam.width; ++ix) {
      const double sx = (ix + 0.5 - 0.5 * cam.width) / cam.scale;
      const double sy = (iy + 0.5 - 0.5 * cam.height) / cam.scale;
      const render::Vec3 q = cam.center + sx * r + (-sy) * u;
      RgbAF acc;
      for (int step = 0; step < c1 - c0; ++step) {
        const int k = forward ? c0 + step : c1 - 1 - step;
        const double t = (k - q[f.c]) / dc;
        const render::Vec3 p = q + t * d;
        const RgbAF s =
            classify_bilinear(v, tf, region, f, p[f.a], p[f.b], k);
        const float inv = 1.0f - acc.a;
        acc.r += inv * s.r;
        acc.g += inv * s.g;
        acc.b += inv * s.b;
        acc.a += inv * s.a;
        if (acc.a >= 0.998f) break;
      }
      out.at(ix, iy) = quantize(acc);
    }
  }
  return out;
}

}  // namespace rtc::color
