// Quality-degradation ladder: approximate & progressive compositing
// with enforced error contracts.
//
// Exact over-compositing is the top rung of a ladder the system can
// step down under pressure instead of shedding or blanking work:
//
//   kExact        bit-exact composition (the default; rung 0)
//   kApprox       opacity-saturation early termination: a blend whose
//                 front accumulation is already >= `saturation` opaque
//                 skips folding the occluded back contribution
//   kProgressive  coarse-first: partials are box-downsampled by
//                 `coarse_factor`, composited at coarse resolution and
//                 delivered immediately (first light), then refined at
//                 full resolution if the deadline still allows
//   kStale        serve the previous frame's image without compositing
//   kBlank        serve a blank image (last resort before shedding)
//
// Error is a first-class contract. Every rung has an a-priori
// per-frame max-pixel-error bound (exact: 0, stale/blank: 255); a
// QualityPolicy's `max_error` REJECTS any rung whose bound exceeds it,
// falling back toward exact. `max_error == 0` therefore admits only
// the exact rung and stays byte-identical to the legacy path. The
// harness additionally measures the realized error against the exact
// reference composite and records both numbers in RunStats, so
// "approximate" is a measured contract, not a hope.
//
// Everything here is pure arithmetic over deterministic pixel data:
// rung selection and both bounds are bit-identical across executors
// and replays.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "rtc/image/image.hpp"

namespace rtc::quality {

/// Ladder rungs, best quality first. Numeric order IS degradation
/// order: stepping down the ladder increments the value.
enum class Rung : std::uint8_t {
  kExact = 0,
  kApprox = 1,
  kProgressive = 2,
  kStale = 3,
  kBlank = 4,
};

inline constexpr int kRungCount = 5;

[[nodiscard]] const char* rung_name(Rung r);

/// Parses a rung name ("exact", "approx", "progressive", "stale",
/// "blank"); nullopt on anything else.
[[nodiscard]] std::optional<Rung> parse_rung(const std::string& name);

/// Per-run (or per-session) quality knobs. Defaults keep the ladder
/// off: max_rung == kExact never degrades and is byte-identical to
/// builds that predate the subsystem.
struct QualityPolicy {
  /// Deepest rung the controller may step down to.
  Rung max_rung = Rung::kExact;
  /// Error contract: rungs whose a-priori per-frame bound exceeds this
  /// are rejected (the controller falls back toward exact). 0 admits
  /// only the exact rung; 255 admits everything.
  int max_error = 255;
  /// Approximate rung: skip folding the occluded side of a blend once
  /// the front accumulation's alpha reaches this value. Must be in
  /// [128, 255]; higher = tighter bound, fewer skips.
  int saturation = 240;
  /// Progressive rung: box-downsample factor for the coarse pass
  /// (>= 2).
  int coarse_factor = 4;
  /// Service layer: on admission-queue overflow, step the session's
  /// quality class down one rung instead of shedding a request.
  bool degrade_before_shed = false;

  /// True when the policy can ever leave the exact rung.
  [[nodiscard]] bool engaged() const { return max_rung != Rung::kExact; }
};

/// A-priori per-frame max-pixel-error bound of the approximate rung.
///
/// A single skipped blend discards a back contribution attenuated by
/// the saturated front: per channel <= 255 - saturation. Skips in
/// composition trees can chain, but every later skipped region for the
/// same pixel sits behind yet another saturated accumulation, so the
/// discarded mass decays geometrically by (255-sat)/255 per level:
/// total <= (255-sat) * 255/sat <= 2*(255-sat) for sat >= 128. The
/// +16 slack absorbs round-to-nearest drift across blend levels.
/// Saturations below 128 break the geometric argument and bound at
/// 255 (the policy check rejects them anyway).
[[nodiscard]] int approx_error_bound(int saturation);

/// A-priori per-frame max-pixel-error bound of the progressive rung's
/// coarse (unrefined) delivery, computed from the actual partials:
/// for every coarse cell, replacing each rank's pixels by their cell
/// box-average perturbs the composite by at most the sum over ranks of
/// that rank's in-cell (value range + alpha range); the bound is the
/// worst cell, plus rounding slack (one LSB per rank for the box
/// average, plus blend-tree drift), clamped to 255. O(P * pixels).
[[nodiscard]] int progressive_error_bound(
    std::span<const img::Image> partials, int coarse_factor);

/// Live pressure signals a controller steps the ladder by. All fields
/// describe the PREVIOUS frame / current queue — deterministic
/// quantities in virtual time.
struct PressureSignals {
  bool deadline_missed = false;  ///< last frame blew its deadline
  bool stragglers = false;       ///< straggler detector / hedges fired
  bool peer_loss = false;        ///< a peer died or blocks were lost
  int queue_depth = 0;           ///< admission queue depth (service)
  int queue_cap = 0;             ///< admission queue capacity (0 = n/a)

  [[nodiscard]] bool any() const {
    return deadline_missed || stragglers || peer_loss ||
           (queue_cap > 0 && queue_depth >= queue_cap);
  }
};

/// Steps a rung one position down (degrade) or up (recover) the
/// ladder, clamped to [kExact, floor].
[[nodiscard]] Rung step_down(Rung r, Rung floor);
[[nodiscard]] Rung step_up(Rung r);

/// Per-sequence ladder state machine: under pressure, step one rung
/// down per frame (never past policy.max_rung); once pressure clears,
/// recover one rung per frame back toward exact. Hysteresis is one
/// frame in each direction — deterministic and replayable.
class QualityController {
 public:
  explicit QualityController(const QualityPolicy& policy)
      : policy_(policy) {}

  /// Chooses the rung for the next frame from the pressure signals.
  Rung choose(const PressureSignals& p) {
    if (!policy_.engaged()) return Rung::kExact;
    current_ = p.any() ? step_down(current_, policy_.max_rung)
                       : step_up(current_);
    return current_;
  }

  [[nodiscard]] Rung current() const { return current_; }
  void reset() { current_ = Rung::kExact; }
  [[nodiscard]] const QualityPolicy& policy() const { return policy_; }

 private:
  QualityPolicy policy_;
  Rung current_ = Rung::kExact;
};

/// The error contract applied to a proposed rung: the executed rung
/// and the a-priori bound it reports.
struct RungChoice {
  Rung rung = Rung::kExact;
  int bound = 0;
};

/// Returns the a-priori bound of `r` under `policy`; `partials` are
/// needed only for the progressive rung (pass {} otherwise, which
/// bounds progressive at 255).
[[nodiscard]] int rung_error_bound(Rung r, const QualityPolicy& policy,
                                   std::span<const img::Image> partials);

/// Enforces the contract: walks `proposed` back toward exact until the
/// rung's a-priori bound fits under policy.max_error, and returns the
/// first admitted rung with its bound. Always terminates at kExact
/// (bound 0).
[[nodiscard]] RungChoice enforce_contract(
    Rung proposed, const QualityPolicy& policy,
    std::span<const img::Image> partials);

}  // namespace rtc::quality
