#include "rtc/quality/quality.hpp"

#include <algorithm>

namespace rtc::quality {

const char* rung_name(Rung r) {
  switch (r) {
    case Rung::kExact: return "exact";
    case Rung::kApprox: return "approx";
    case Rung::kProgressive: return "progressive";
    case Rung::kStale: return "stale";
    case Rung::kBlank: return "blank";
  }
  return "?";
}

std::optional<Rung> parse_rung(const std::string& name) {
  for (int i = 0; i < kRungCount; ++i) {
    const Rung r = static_cast<Rung>(i);
    if (name == rung_name(r)) return r;
  }
  return std::nullopt;
}

int approx_error_bound(int saturation) {
  if (saturation < 128 || saturation > 255) return 255;
  return std::min(255, 2 * (255 - saturation) + 16);
}

int progressive_error_bound(std::span<const img::Image> partials,
                            int coarse_factor) {
  if (coarse_factor < 2 || partials.empty()) return 255;
  const int w = partials[0].width();
  const int h = partials[0].height();
  const int cw = (w + coarse_factor - 1) / coarse_factor;
  const int ch = (h + coarse_factor - 1) / coarse_factor;
  int worst = 0;
  for (int cy = 0; cy < ch; ++cy) {
    for (int cx = 0; cx < cw; ++cx) {
      const int x0 = cx * coarse_factor;
      const int y0 = cy * coarse_factor;
      const int x1 = std::min(w, x0 + coarse_factor);
      const int y1 = std::min(h, y0 + coarse_factor);
      int cell = 0;
      for (const img::Image& p : partials) {
        int vmin = 255, vmax = 0, amin = 255, amax = 0;
        for (int y = y0; y < y1; ++y) {
          for (int x = x0; x < x1; ++x) {
            const img::GrayA8 px = p.at(x, y);
            vmin = std::min(vmin, static_cast<int>(px.v));
            vmax = std::max(vmax, static_cast<int>(px.v));
            amin = std::min(amin, static_cast<int>(px.a));
            amax = std::max(amax, static_cast<int>(px.a));
          }
        }
        cell += (vmax - vmin) + (amax - amin);
      }
      worst = std::max(worst, cell);
    }
  }
  // One LSB of box-average rounding per rank plus blend-tree drift.
  worst += static_cast<int>(partials.size()) + 8;
  return std::min(255, worst);
}

Rung step_down(Rung r, Rung floor) {
  const int next = std::min(static_cast<int>(r) + 1, static_cast<int>(floor));
  return static_cast<Rung>(std::max(next, static_cast<int>(r)));
}

Rung step_up(Rung r) {
  if (r == Rung::kExact) return r;
  return static_cast<Rung>(static_cast<int>(r) - 1);
}

int rung_error_bound(Rung r, const QualityPolicy& policy,
                     std::span<const img::Image> partials) {
  switch (r) {
    case Rung::kExact: return 0;
    case Rung::kApprox: return approx_error_bound(policy.saturation);
    case Rung::kProgressive:
      return progressive_error_bound(partials, policy.coarse_factor);
    case Rung::kStale:
    case Rung::kBlank: return 255;
  }
  return 255;
}

RungChoice enforce_contract(Rung proposed, const QualityPolicy& policy,
                            std::span<const img::Image> partials) {
  Rung r = std::min(proposed, policy.max_rung);
  while (r != Rung::kExact) {
    const int bound = rung_error_bound(r, policy, partials);
    if (bound <= policy.max_error) return {r, bound};
    r = step_up(r);
  }
  return {Rung::kExact, 0};
}

}  // namespace rtc::quality
