// Splatting renderer (Westover's footprint evaluation [23]) — the
// third rendering algorithm of the paper's introduction, implemented
// as a sheet-buffer splatter: slices perpendicular to the principal
// axis are traversed front to back; each classified voxel in a slice
// splats a small Gaussian footprint (additively) into a sheet buffer;
// the finished sheet composites over the accumulated image. Included
// so the composition stage can be exercised with partial images whose
// edge structure differs from shear-warp's (softer footprints -> fewer
// hard blank runs, different codec behavior).
#include <array>
#include <cmath>
#include <vector>

#include "rtc/common/check.hpp"
#include "rtc/render/renderer.hpp"
#include "rtc/render/rle_volume.hpp"
#include "rtc/render/sampling.hpp"

namespace rtc::render {

namespace {

/// Precomputed 4x4 separable Gaussian footprint with unit mass,
/// centred between the inner taps (radius ~1.3 px).
struct Footprint {
  static constexpr int kTaps = 4;
  std::array<float, kTaps> w{};

  Footprint() {
    const float sigma = 0.7f;
    float sum = 0.0f;
    for (int i = 0; i < kTaps; ++i) {
      const float d = static_cast<float>(i) - 1.5f;
      w[static_cast<std::size_t>(i)] =
          std::exp(-0.5f * d * d / (sigma * sigma));
      sum += w[static_cast<std::size_t>(i)];
    }
    for (float& x : w) x /= sum;
  }
};

int axis_lo(const vol::Brick& b, int axis) {
  return axis == 0 ? b.x0 : (axis == 1 ? b.y0 : b.z0);
}
int axis_hi(const vol::Brick& b, int axis) {
  return axis == 0 ? b.x1 : (axis == 1 ? b.y1 : b.z1);
}

}  // namespace

img::Image render_splat(const vol::Volume& v,
                        const vol::TransferFunction& tf,
                        const vol::Brick& region, const OrthoCamera& cam,
                        RenderMode mode) {
  const Vec3 d = cam.direction();
  const int c_ax = principal_axis(d);
  const AxisFrame f = axis_frame(c_ax);
  const int c0 = axis_lo(region, f.c), c1 = axis_hi(region, f.c);
  const bool forward = d[f.c] > 0.0;

  img::Image out(cam.width, cam.height);
  std::vector<img::GrayAF> acc(
      static_cast<std::size_t>(out.pixel_count()));
  std::vector<img::GrayAF> sheet(
      static_cast<std::size_t>(out.pixel_count()));

  const RleVolume rle(v, tf, region, c_ax);
  static const Footprint fp;

  const int b0 = axis_lo(region, f.b), b1 = axis_hi(region, f.b);
  for (int step = 0; step < c1 - c0; ++step) {
    const int k = forward ? c0 + step : c1 - 1 - step;
    bool sheet_dirty = false;

    for (int j = b0; j < b1; ++j) {
      for (const Run& run : rle.runs(k, j)) {
        for (int i = run.begin; i < run.end; ++i) {
          int p[3];
          p[f.a] = i;
          p[f.b] = j;
          p[f.c] = k;
          const img::GrayAF s = tf.classify(v.at(p[0], p[1], p[2]));
          const auto [sx, sy] = cam.project(
              Vec3{static_cast<double>(p[0]), static_cast<double>(p[1]),
                   static_cast<double>(p[2])});
          // Splat a 4x4 footprint centred on the projection.
          const int ix = static_cast<int>(std::floor(sx - 1.5));
          const int iy = static_cast<int>(std::floor(sy - 1.5));
          for (int dy = 0; dy < Footprint::kTaps; ++dy) {
            const int yy = iy + dy;
            if (yy < 0 || yy >= cam.height) continue;
            for (int dx = 0; dx < Footprint::kTaps; ++dx) {
              const int xx = ix + dx;
              if (xx < 0 || xx >= cam.width) continue;
              const float w = fp.w[static_cast<std::size_t>(dx)] *
                              fp.w[static_cast<std::size_t>(dy)] *
                              static_cast<float>(cam.scale * cam.scale);
              img::GrayAF& px = sheet[static_cast<std::size_t>(yy) *
                                          static_cast<std::size_t>(
                                              cam.width) +
                                      static_cast<std::size_t>(xx)];
              px.v += w * s.v;
              px.a += w * s.a;
              sheet_dirty = true;
            }
          }
        }
      }
    }

    if (!sheet_dirty) continue;
    // Composite the sheet behind what is already accumulated
    // (front-to-back), clamping the additive splat sums.
    for (std::size_t idx = 0; idx < acc.size(); ++idx) {
      img::GrayAF s = sheet[idx];
      if (s.a <= 0.0f && s.v <= 0.0f) continue;
      s.v = std::min(s.v, 1.0f);
      s.a = std::min(s.a, 1.0f);
      s.v = std::min(s.v, s.a);  // keep premultiplied invariant
      if (mode == RenderMode::kMip) {
        detail::accumulate_max(acc[idx], s);
      } else if (acc[idx].a < detail::kOpaque) {
        detail::accumulate(acc[idx], s);
      }
      sheet[idx] = img::GrayAF{};
    }
  }

  for (std::int64_t i = 0; i < out.pixel_count(); ++i)
    out.pixels()[static_cast<std::size_t>(i)] =
        detail::quantize(acc[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace rtc::render
