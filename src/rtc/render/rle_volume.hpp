// Run-length classified volume (Lacroute & Levoy [11]).
//
// For a fixed transfer function and principal axis, stores per slice
// and per row the runs of non-transparent voxels, letting the shear-
// warp compositor skip empty space — the optimization that makes
// shear-warp fast and that shapes the blank structure of the partial
// images the composition stage compresses.
#pragma once

#include <cstdint>
#include <vector>

#include "rtc/volume/transfer.hpp"
#include "rtc/volume/volume.hpp"

namespace rtc::render {

/// Non-transparent interval [begin, end) along the fast axis of a row.
struct Run {
  int begin = 0;
  int end = 0;
};

/// Axis mapping: principal axis c; in-slice axes a (fast) and b (rows).
struct AxisFrame {
  int a = 0, b = 1, c = 2;
};
[[nodiscard]] inline AxisFrame axis_frame(int principal) {
  return AxisFrame{(principal + 1) % 3, (principal + 2) % 3, principal};
}

class RleVolume {
 public:
  /// Classifies `region` of `v` under `tf` along principal axis `c`.
  RleVolume(const vol::Volume& v, const vol::TransferFunction& tf,
            const vol::Brick& region, int principal);

  [[nodiscard]] int principal() const { return frame_.c; }
  [[nodiscard]] const AxisFrame& frame() const { return frame_; }
  [[nodiscard]] const vol::Brick& region() const { return region_; }

  /// Runs of row `j` (axis b) in slice `k` (axis c), in region coords.
  [[nodiscard]] const std::vector<Run>& runs(int k, int j) const;

  /// Fraction of region voxels inside a run (diagnostics/tests).
  [[nodiscard]] double occupancy() const;

 private:
  AxisFrame frame_;
  vol::Brick region_;
  int slices_ = 0;
  int rows_ = 0;
  std::vector<std::vector<Run>> rows_runs_;  // [slice * rows_ + row]
};

}  // namespace rtc::render
