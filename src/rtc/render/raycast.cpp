#include <cmath>

#include "rtc/common/check.hpp"
#include "rtc/render/renderer.hpp"
#include "rtc/render/sampling.hpp"

namespace rtc::render {

int principal_axis(const Vec3& dir) {
  const double ax = std::abs(dir.x);
  const double ay = std::abs(dir.y);
  const double az = std::abs(dir.z);
  if (ax >= ay && ax >= az) return 0;
  if (ay >= ax && ay >= az) return 1;
  return 2;
}

img::Image render_raycast(const vol::Volume& v,
                          const vol::TransferFunction& tf,
                          const vol::Brick& region,
                          const OrthoCamera& cam, RenderMode mode) {
  img::Image out(cam.width, cam.height);
  const Vec3 d = cam.direction();
  const int c_ax = principal_axis(d);
  const AxisFrame f = axis_frame(c_ax);
  const double dc = d[f.c];
  RTC_CHECK(std::abs(dc) > 1e-9);

  const int c0 = f.c == 0 ? region.x0 : (f.c == 1 ? region.y0 : region.z0);
  const int c1 = f.c == 0 ? region.x1 : (f.c == 1 ? region.y1 : region.z1);
  const bool forward = dc > 0.0;

  const Vec3 r = cam.right();
  const Vec3 u = cam.up();
  for (int iy = 0; iy < cam.height; ++iy) {
    for (int ix = 0; ix < cam.width; ++ix) {
      const double sx = (ix + 0.5 - 0.5 * cam.width) / cam.scale;
      const double sy = (iy + 0.5 - 0.5 * cam.height) / cam.scale;
      const Vec3 q = cam.center + sx * r + (-sy) * u;
      img::GrayAF acc;
      for (int step = 0; step < c1 - c0; ++step) {
        const int k = forward ? c0 + step : c1 - 1 - step;
        const double t = (k - q[f.c]) / dc;
        const Vec3 p = q + t * d;
        const img::GrayAF s =
            detail::classify_bilinear(v, tf, region, f, p[f.a], p[f.b], k);
        if (mode == RenderMode::kMip) {
          detail::accumulate_max(acc, s);
        } else {
          detail::accumulate(acc, s);
          if (acc.a >= detail::kOpaque) break;
        }
      }
      out.at(ix, iy) = detail::quantize(acc);
    }
  }
  return out;
}

}  // namespace rtc::render
