#include "rtc/render/rle_volume.hpp"

#include "rtc/common/check.hpp"

namespace rtc::render {

namespace {

int axis_lo(const vol::Brick& b, int axis) {
  return axis == 0 ? b.x0 : (axis == 1 ? b.y0 : b.z0);
}
int axis_hi(const vol::Brick& b, int axis) {
  return axis == 0 ? b.x1 : (axis == 1 ? b.y1 : b.z1);
}

}  // namespace

RleVolume::RleVolume(const vol::Volume& v, const vol::TransferFunction& tf,
                     const vol::Brick& region, int principal)
    : frame_(axis_frame(principal)), region_(region) {
  RTC_CHECK(principal >= 0 && principal <= 2);
  const int a0 = axis_lo(region, frame_.a), a1 = axis_hi(region, frame_.a);
  const int b0 = axis_lo(region, frame_.b), b1 = axis_hi(region, frame_.b);
  const int c0 = axis_lo(region, frame_.c), c1 = axis_hi(region, frame_.c);
  slices_ = c1 - c0;
  rows_ = b1 - b0;
  RTC_CHECK(slices_ >= 0 && rows_ >= 0);
  rows_runs_.resize(static_cast<std::size_t>(slices_) *
                    static_cast<std::size_t>(rows_));

  int p[3];
  for (int k = c0; k < c1; ++k) {
    p[frame_.c] = k;
    for (int j = b0; j < b1; ++j) {
      p[frame_.b] = j;
      auto& runs = rows_runs_[static_cast<std::size_t>(k - c0) *
                                  static_cast<std::size_t>(rows_) +
                              static_cast<std::size_t>(j - b0)];
      int start = -1;
      for (int i = a0; i < a1; ++i) {
        p[frame_.a] = i;
        const bool solid = !tf.transparent(v.at(p[0], p[1], p[2]));
        if (solid && start < 0) start = i;
        if (!solid && start >= 0) {
          runs.push_back(Run{start, i});
          start = -1;
        }
      }
      if (start >= 0) runs.push_back(Run{start, a1});
    }
  }
}

const std::vector<Run>& RleVolume::runs(int k, int j) const {
  const int c0 = axis_lo(region_, frame_.c);
  const int b0 = axis_lo(region_, frame_.b);
  RTC_DCHECK(k >= c0 && k - c0 < slices_);
  RTC_DCHECK(j >= b0 && j - b0 < rows_);
  return rows_runs_[static_cast<std::size_t>(k - c0) *
                        static_cast<std::size_t>(rows_) +
                    static_cast<std::size_t>(j - b0)];
}

double RleVolume::occupancy() const {
  std::int64_t solid = 0;
  for (const auto& runs : rows_runs_)
    for (const Run& r : runs) solid += r.end - r.begin;
  const std::int64_t total = region_.voxels();
  return total == 0 ? 0.0
                    : static_cast<double>(solid) / static_cast<double>(total);
}

}  // namespace rtc::render
