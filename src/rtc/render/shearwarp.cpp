// Shear-warp factorization renderer (Lacroute & Levoy [11]).
//
// The orthographic viewing transform factors into (1) a shear along the
// principal axis that makes every viewing ray perpendicular to the
// slices — so slices composite into an *intermediate* image by pure 2-D
// resampling — followed by (2) a 2-D affine warp of the intermediate
// image to the final screen. Empty space is skipped with the
// RLE-classified volume.
//
// Derivation used below: with d the ray direction, principal axis c and
// in-slice axes (a, b), the shear is s_u = -d_a/d_c, s_v = -d_b/d_c and
// a voxel (i, j, k) lands at intermediate (u, v) = (i + s_u k, j + s_v k)
// (plus translation). Points on one ray share (u, v). The residual map
// (u, v) -> screen is affine because the k-dependence cancels:
// screen(e_c - s_u e_a - s_v e_b) = screen(d / d_c) = 0 for an
// orthographic projection along d (a property test pins this).
#include <algorithm>
#include <cmath>
#include <vector>

#include "rtc/common/check.hpp"
#include "rtc/render/renderer.hpp"
#include "rtc/render/rle_volume.hpp"
#include "rtc/render/sampling.hpp"

namespace rtc::render {

namespace {

int axis_lo(const vol::Brick& b, int axis) {
  return axis == 0 ? b.x0 : (axis == 1 ? b.y0 : b.z0);
}
int axis_hi(const vol::Brick& b, int axis) {
  return axis == 0 ? b.x1 : (axis == 1 ? b.y1 : b.z1);
}

Vec3 axis_unit(int axis) {
  return Vec3{axis == 0 ? 1.0 : 0.0, axis == 1 ? 1.0 : 0.0,
              axis == 2 ? 1.0 : 0.0};
}

struct Vec2 {
  double x = 0.0, y = 0.0;
};

/// Merged, sorted half-open integer intervals.
void merge_intervals(std::vector<std::pair<int, int>>& iv) {
  std::sort(iv.begin(), iv.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < iv.size(); ++i) {
    if (out > 0 && iv[i].first <= iv[out - 1].second) {
      iv[out - 1].second = std::max(iv[out - 1].second, iv[i].second);
    } else {
      iv[out++] = iv[i];
    }
  }
  iv.resize(out);
}

}  // namespace

img::Image render_shearwarp(const vol::Volume& v,
                            const vol::TransferFunction& tf,
                            const vol::Brick& region,
                            const OrthoCamera& cam, RenderMode mode) {
  const Vec3 d = cam.direction();
  const int c_ax = principal_axis(d);
  const AxisFrame f = axis_frame(c_ax);
  const double dc = d[f.c];
  RTC_CHECK(std::abs(dc) > 1e-9);
  const double su = -d[f.a] / dc;
  const double sv = -d[f.b] / dc;

  const int a0 = axis_lo(region, f.a), a1 = axis_hi(region, f.a);
  const int b0 = axis_lo(region, f.b), b1 = axis_hi(region, f.b);
  const int c0 = axis_lo(region, f.c), c1 = axis_hi(region, f.c);
  if (a1 <= a0 || b1 <= b0 || c1 <= c0)
    return img::Image(cam.width, cam.height);

  // Intermediate raster extents covering every sheared slice footprint.
  const double su_min = std::min(su * c0, su * (c1 - 1));
  const double su_max = std::max(su * c0, su * (c1 - 1));
  const double sv_min = std::min(sv * c0, sv * (c1 - 1));
  const double sv_max = std::max(sv * c0, sv * (c1 - 1));
  const double offu = 1.0 - std::floor(a0 + su_min);
  const double offv = 1.0 - std::floor(b0 + sv_min);
  const int wu =
      static_cast<int>(std::ceil(a1 - 1 + su_max + offu)) + 2;
  const int hv =
      static_cast<int>(std::ceil(b1 - 1 + sv_max + offv)) + 2;

  std::vector<img::GrayAF> acc(static_cast<std::size_t>(wu) *
                               static_cast<std::size_t>(hv));

  const RleVolume rle(v, tf, region, c_ax);
  const bool forward = dc > 0.0;

  // --- Shear & composite: slices front to back into the intermediate.
  std::vector<std::pair<int, int>> spans;
  for (int step = 0; step < c1 - c0; ++step) {
    const int k = forward ? c0 + step : c1 - 1 - step;
    const double shift_u = su * k + offu;
    const double shift_v = sv * k + offv;

    const int v_lo =
        std::max(0, static_cast<int>(std::ceil(b0 + shift_v - 1.0)));
    const int v_hi =
        std::min(hv - 1, static_cast<int>(std::floor(b1 - 1 + shift_v + 1.0)));
    for (int vi = v_lo; vi <= v_hi; ++vi) {
      const double j_real = vi - shift_v;
      const int j0 = static_cast<int>(std::floor(j_real));

      spans.clear();
      for (int jj = j0; jj <= j0 + 1; ++jj) {
        if (jj < b0 || jj >= b1) continue;
        for (const Run& run : rle.runs(k, jj)) {
          const int u_lo = static_cast<int>(
              std::ceil(run.begin - 1 + shift_u));
          const int u_hi = static_cast<int>(
              std::ceil(run.end + shift_u));  // exclusive
          spans.emplace_back(std::max(0, u_lo), std::min(wu, u_hi));
        }
      }
      merge_intervals(spans);

      img::GrayAF* row = acc.data() + static_cast<std::size_t>(vi) *
                                          static_cast<std::size_t>(wu);
      for (const auto& [ub, ue] : spans) {
        for (int ui = ub; ui < ue; ++ui) {
          img::GrayAF& pix = row[ui];
          const double i_real = ui - shift_u;
          if (mode == RenderMode::kMip) {
            detail::accumulate_max(
                pix, detail::classify_bilinear(v, tf, region, f, i_real,
                                               j_real, k));
            continue;
          }
          if (pix.a >= detail::kOpaque) continue;
          detail::accumulate(
              pix, detail::classify_bilinear(v, tf, region, f, i_real,
                                             j_real, k));
        }
      }
    }
  }

  // --- Warp: affine map from intermediate to screen, applied inverse.
  auto lin = [&](Vec3 w) {
    return Vec2{cam.scale * dot(w, cam.right()),
                -cam.scale * dot(w, cam.up())};
  };
  const Vec2 su_col = lin(axis_unit(f.a));
  const Vec2 sv_col = lin(axis_unit(f.b));
  const std::array<double, 2> origin = cam.project(Vec3{0.0, 0.0, 0.0});
  const double det = su_col.x * sv_col.y - sv_col.x * su_col.y;
  RTC_CHECK_MSG(std::abs(det) > 1e-12, "degenerate warp");

  img::Image out(cam.width, cam.height);
  for (int iy = 0; iy < cam.height; ++iy) {
    for (int ix = 0; ix < cam.width; ++ix) {
      const double rx = ix + 0.5 - origin[0];
      const double ry = iy + 0.5 - origin[1];
      const double uu = (sv_col.y * rx - sv_col.x * ry) / det + offu;
      const double vv = (-su_col.y * rx + su_col.x * ry) / det + offv;

      // Bilinear sample of the intermediate (transparent outside).
      const int iu = static_cast<int>(std::floor(uu));
      const int iv = static_cast<int>(std::floor(vv));
      const auto tu = static_cast<float>(uu - iu);
      const auto tv = static_cast<float>(vv - iv);
      auto tap = [&](int x, int y) -> img::GrayAF {
        if (x < 0 || x >= wu || y < 0 || y >= hv) return img::GrayAF{};
        return acc[static_cast<std::size_t>(y) *
                       static_cast<std::size_t>(wu) +
                   static_cast<std::size_t>(x)];
      };
      const img::GrayAF c00 = tap(iu, iv);
      const img::GrayAF c10 = tap(iu + 1, iv);
      const img::GrayAF c01 = tap(iu, iv + 1);
      const img::GrayAF c11 = tap(iu + 1, iv + 1);
      const float w00 = (1.0f - tu) * (1.0f - tv);
      const float w10 = tu * (1.0f - tv);
      const float w01 = (1.0f - tu) * tv;
      const float w11 = tu * tv;
      out.at(ix, iy) = detail::quantize(img::GrayAF{
          w00 * c00.v + w10 * c10.v + w01 * c01.v + w11 * c11.v,
          w00 * c00.a + w10 * c10.a + w01 * c01.a + w11 * c11.a});
    }
  }
  return out;
}

}  // namespace rtc::render
