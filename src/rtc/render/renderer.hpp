// The two volume renderers.
//
// render_shearwarp is the paper's rendering stage: the Lacroute-Levoy
// shear-warp factorization over an RLE-classified volume (composite
// sheared slices into an intermediate image, then 2-D warp).
// render_raycast is an orthographic ray-caster that samples at the same
// slice planes with the same in-slice bilinear filter; it exists to
// cross-check the shear-warp output and as a simple reference renderer.
//
// Both render only `region` (a rank's brick): voxels outside it are
// transparent, producing the partial images the composition stage
// merges. Both write premultiplied gray+alpha.
#pragma once

#include "rtc/image/image.hpp"
#include "rtc/render/camera.hpp"
#include "rtc/volume/transfer.hpp"
#include "rtc/volume/volume.hpp"

namespace rtc::render {

/// What a ray accumulates.
enum class RenderMode {
  kComposite,  ///< front-to-back "over" (the paper's setting)
  kMip         ///< maximum-intensity projection (commutative merges)
};

[[nodiscard]] img::Image render_raycast(
    const vol::Volume& v, const vol::TransferFunction& tf,
    const vol::Brick& region, const OrthoCamera& cam,
    RenderMode mode = RenderMode::kComposite);

[[nodiscard]] img::Image render_shearwarp(
    const vol::Volume& v, const vol::TransferFunction& tf,
    const vol::Brick& region, const OrthoCamera& cam,
    RenderMode mode = RenderMode::kComposite);

/// Sheet-buffer splatting (Westover [23], from the paper's intro):
/// slices splat Gaussian footprints into a sheet that composites
/// front-to-back. Softer edges than shear-warp; useful as a third
/// workload for the composition stage.
[[nodiscard]] img::Image render_splat(
    const vol::Volume& v, const vol::TransferFunction& tf,
    const vol::Brick& region, const OrthoCamera& cam,
    RenderMode mode = RenderMode::kComposite);

/// Axis with the largest |direction| component (the shear-warp
/// principal axis; also the slicing axis of the ray-caster).
[[nodiscard]] int principal_axis(const Vec3& dir);

/// Perspective view for render_raycast_perspective (extension; the
/// paper-era shear-warp stays orthographic).
struct PerspectiveCamera {
  Vec3 eye{};
  Vec3 target{};        ///< looked-at point (usually the volume center)
  double fov_deg = 40;  ///< full vertical field of view
  int width = 512;
  int height = 512;
};

/// Perspective ray-caster; converges to render_raycast as the eye
/// recedes and the field of view narrows (property-tested).
[[nodiscard]] img::Image render_raycast_perspective(
    const vol::Volume& v, const vol::TransferFunction& tf,
    const vol::Brick& region, const PerspectiveCamera& cam,
    RenderMode mode = RenderMode::kComposite);

}  // namespace rtc::render
