// Internal: classified in-slice bilinear sampling shared by both
// renderers (pre-classified rendering: classify at voxels, then
// interpolate the premultiplied samples).
#pragma once

#include <cmath>

#include "rtc/image/pixel.hpp"
#include "rtc/render/rle_volume.hpp"
#include "rtc/volume/transfer.hpp"
#include "rtc/volume/volume.hpp"

namespace rtc::render::detail {

/// Classified sample at integer in-slice coords (transparent outside
/// `region`).
inline img::GrayAF classify_at(const vol::Volume& v,
                               const vol::TransferFunction& tf,
                               const vol::Brick& region,
                               const AxisFrame& f, int i, int j, int k) {
  int p[3];
  p[f.a] = i;
  p[f.b] = j;
  p[f.c] = k;
  if (!region.contains(p[0], p[1], p[2])) return img::GrayAF{};
  return tf.classify(v.at(p[0], p[1], p[2]));
}

/// Bilinear interpolation of classified samples within slice k.
inline img::GrayAF classify_bilinear(const vol::Volume& v,
                                     const vol::TransferFunction& tf,
                                     const vol::Brick& region,
                                     const AxisFrame& f, double i_real,
                                     double j_real, int k) {
  const int i0 = static_cast<int>(std::floor(i_real));
  const int j0 = static_cast<int>(std::floor(j_real));
  const auto ti = static_cast<float>(i_real - i0);
  const auto tj = static_cast<float>(j_real - j0);
  const img::GrayAF c00 = classify_at(v, tf, region, f, i0, j0, k);
  const img::GrayAF c10 = classify_at(v, tf, region, f, i0 + 1, j0, k);
  const img::GrayAF c01 = classify_at(v, tf, region, f, i0, j0 + 1, k);
  const img::GrayAF c11 = classify_at(v, tf, region, f, i0 + 1, j0 + 1, k);
  const float w00 = (1.0f - ti) * (1.0f - tj);
  const float w10 = ti * (1.0f - tj);
  const float w01 = (1.0f - ti) * tj;
  const float w11 = ti * tj;
  return img::GrayAF{
      w00 * c00.v + w10 * c10.v + w01 * c01.v + w11 * c11.v,
      w00 * c00.a + w10 * c10.a + w01 * c01.a + w11 * c11.a};
}

/// Front-to-back accumulation into `acc` (premultiplied).
inline void accumulate(img::GrayAF& acc, const img::GrayAF& s) {
  const float inv = 1.0f - acc.a;
  acc.v += inv * s.v;
  acc.a += inv * s.a;
}

/// Maximum-intensity accumulation (MIP).
inline void accumulate_max(img::GrayAF& acc, const img::GrayAF& s) {
  acc.v = s.v > acc.v ? s.v : acc.v;
  acc.a = s.a > acc.a ? s.a : acc.a;
}

inline constexpr float kOpaque = 0.998f;

/// Quantizes a premultiplied float pixel to 8-bit.
inline img::GrayA8 quantize(const img::GrayAF& p) {
  auto q = [](float x) {
    const float c = x < 0.0f ? 0.0f : (x > 1.0f ? 1.0f : x);
    return static_cast<std::uint8_t>(c * 255.0f + 0.5f);
  };
  return img::GrayA8{q(p.v), q(p.a)};
}

}  // namespace rtc::render::detail
