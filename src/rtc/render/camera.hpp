// Orthographic camera and the view geometry shared by both renderers.
//
// The paper-era shear-warp factorization targets parallel projection;
// the camera is an orthographic view of the volume given by yaw/pitch
// angles, a pixel scale, and the output raster size.
#pragma once

#include <array>
#include <cmath>

namespace rtc::render {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  [[nodiscard]] double operator[](int i) const {
    return i == 0 ? x : (i == 1 ? y : z);
  }
  friend Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3 operator*(double s, Vec3 a) {
    return {s * a.x, s * a.y, s * a.z};
  }
};

[[nodiscard]] inline double dot(Vec3 a, Vec3 b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
[[nodiscard]] inline Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}
[[nodiscard]] inline Vec3 normalized(Vec3 a) {
  const double n = std::sqrt(dot(a, a));
  return {a.x / n, a.y / n, a.z / n};
}

/// Orthographic view: rays travel along direction(); the image plane is
/// spanned by right()/up() through the volume center.
struct OrthoCamera {
  double yaw_deg = 0.0;    ///< rotation about +y (0 looks along +z)
  double pitch_deg = 0.0;  ///< elevation; keep |pitch| < 80 degrees
  double scale = 1.0;      ///< pixels per voxel unit
  int width = 512;
  int height = 512;
  Vec3 center{};           ///< world point mapped to the image center

  [[nodiscard]] Vec3 direction() const {
    constexpr double kPi = 3.14159265358979323846;
    const double ya = yaw_deg * kPi / 180.0;
    const double pa = pitch_deg * kPi / 180.0;
    return normalized(Vec3{std::cos(pa) * std::sin(ya), std::sin(pa),
                           std::cos(pa) * std::cos(ya)});
  }
  [[nodiscard]] Vec3 right() const {
    return normalized(cross(Vec3{0.0, 1.0, 0.0}, direction()));
  }
  [[nodiscard]] Vec3 up() const { return cross(direction(), right()); }

  /// Screen position of a world point (x right, y down).
  [[nodiscard]] std::array<double, 2> project(Vec3 p) const {
    const Vec3 q = p - center;
    return {0.5 * width + scale * dot(q, right()),
            0.5 * height - scale * dot(q, up())};
  }
};

/// Camera centered on a volume of the given dimensions.
[[nodiscard]] inline OrthoCamera centered_camera(int nx, int ny, int nz,
                                                 double yaw_deg,
                                                 double pitch_deg,
                                                 int size, double scale) {
  OrthoCamera cam;
  cam.yaw_deg = yaw_deg;
  cam.pitch_deg = pitch_deg;
  cam.scale = scale;
  cam.width = size;
  cam.height = size;
  cam.center = Vec3{0.5 * (nx - 1), 0.5 * (ny - 1), 0.5 * (nz - 1)};
  return cam;
}

}  // namespace rtc::render
