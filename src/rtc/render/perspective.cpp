// Perspective ray-casting (extension beyond the paper's orthographic
// shear-warp). Rays diverge from an eye point; sampling still happens
// at the principal-axis slice planes with in-slice bilinear filtering,
// so a distant, narrow-field perspective render converges to the
// orthographic ray-caster — the property test that pins the geometry.
#include <cmath>

#include "rtc/common/check.hpp"
#include "rtc/render/renderer.hpp"
#include "rtc/render/sampling.hpp"

namespace rtc::render {

img::Image render_raycast_perspective(const vol::Volume& v,
                                      const vol::TransferFunction& tf,
                                      const vol::Brick& region,
                                      const PerspectiveCamera& cam,
                                      RenderMode mode) {
  img::Image out(cam.width, cam.height);
  const Vec3 forward = normalized(cam.target - cam.eye);
  const Vec3 right = normalized(cross(Vec3{0.0, 1.0, 0.0}, forward));
  const Vec3 up = cross(forward, right);

  constexpr double kPi = 3.14159265358979323846;
  const double half = std::tan(0.5 * cam.fov_deg * kPi / 180.0);

  for (int iy = 0; iy < cam.height; ++iy) {
    for (int ix = 0; ix < cam.width; ++ix) {
      // Ray through the pixel center on a unit-distance image plane.
      const double px =
          (2.0 * (ix + 0.5) / cam.width - 1.0) * half;
      const double py =
          (1.0 - 2.0 * (iy + 0.5) / cam.height) * half;
      const Vec3 dir =
          normalized(forward + px * right + py * up);

      const int c_ax = principal_axis(dir);
      const AxisFrame f = axis_frame(c_ax);
      const double dc = dir[f.c];
      img::GrayAF acc;
      if (std::abs(dc) > 1e-9) {
        const int c0 =
            f.c == 0 ? region.x0 : (f.c == 1 ? region.y0 : region.z0);
        const int c1 =
            f.c == 0 ? region.x1 : (f.c == 1 ? region.y1 : region.z1);
        const bool fwd = dc > 0.0;
        for (int step = 0; step < c1 - c0; ++step) {
          const int k = fwd ? c0 + step : c1 - 1 - step;
          const double t = (k - cam.eye[f.c]) / dc;
          if (t <= 0.0) continue;  // behind the eye
          const Vec3 p = cam.eye + t * dir;
          const img::GrayAF s = detail::classify_bilinear(
              v, tf, region, f, p[f.a], p[f.b], k);
          if (mode == RenderMode::kMip) {
            detail::accumulate_max(acc, s);
          } else {
            detail::accumulate(acc, s);
            if (acc.a >= detail::kOpaque) break;
          }
        }
      }
      out.at(ix, iy) = detail::quantize(acc);
    }
  }
  return out;
}

}  // namespace rtc::render
