// rtcomp — command-line front end for the library.
//
//   rtcomp info
//   rtcomp render   --dataset engine --ranks 8 --method rt_n --blocks 3
//                   [--codec trle] [--image 512] [--volume 96]
//                   [--renderer shearwarp|raycast|splat] [--mip]
//                   [--partition slab|grid|balanced] [--out out.pgm]
//                   [--executor pooled|threaded] [--workers N]
//                   [--simd auto|scalar|sse2|avx2] [--blend-threads N]
//                   [--topology flat|sp2|paper|fat-tree|dragonfly|cloud]
//                   [--group-size G] [--hier-intra M] [--hier-inter M]
//                   [--trace timeline.json]
//                   [--trace-out trace.json] [--metrics-out metrics.txt]
//                   [--fault-seed N] [--fault-drop P] [--fault-corrupt P]
//                   [--fault-dup P] [--fault-delay P]
//                   [--fault-delay-mean S] [--fault-crash-rank R]
//                   [--fault-crash-after SENDS] [--fault-crash-at T]
//                   [--fault-link S:D:DROP[:CORRUPT]]
//                   [--fault-slow R:FACTOR] [--fault-jitter S:D:MEAN]
//                   [--retries N] [--rto S]
//                   [--on-peer-loss blank|throw|recompose]
//                   [--circuit-breaker-threshold N] [--breaker-cooldown S]
//                   [--relay] [--straggler-multiple X]
//                   [--straggler-window N] [--hedge] [--deadline S]
//                   [--quality exact|approx|progressive|stale|blank]
//                   [--max-error N] [--progressive FACTOR]
//                   [--saturation S]
//     multi-frame (camera sweep through the frame pipeline):
//                   --frames K [--sweep DEG] [--max-in-flight M]
//                   [--no-coherence] [--stream frames.pgms]
//                   [--fault-frame F]
//     render service (sessions + admission over the pipeline):
//                   --service [--sessions N] [--requests K]
//                   [--arrival-rate R] [--traffic-seed S]
//                   [--admission shed-oldest|reject-new]
//                   [--queue-cap Q] [--session-deadline S]
//                   [--quant DEG] [--yaw-step DEG]
//                   [--priority-classes C] [--max-in-flight M]
//                   [--no-coherence] [--fault-submission K]
//                   [--degrade-before-shed]
//   rtcomp schedule --ranks 3 --blocks 4 [--variant n|2n|any]
//   rtcomp predict  --ranks 32 --blocks 4 [--pixels 262144]
//                   [--ts 0.0035] [--tp 1e-7] [--to 2.5e-7]
//                   [--topology flat|sp2|paper|fat-tree|dragonfly|cloud]
//
// Flags take `--key value` or `--key=value` form. Malformed numeric
// values are a usage error naming the flag — never an unhandled
// std::stoi throw.
//
// Exit codes: 0 ok, 2 usage error.
#include <climits>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "rtc/common/flags.hpp"
#include "rtc/image/ops.hpp"
#include "rtc/rtc.hpp"
#include "rtc/simd/dispatch.hpp"

namespace {

using namespace rtc;

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << key << "\n";
        std::exit(2);
      }
      key = key.substr(2);
      if (const std::size_t eq = key.find('='); eq != std::string::npos) {
        kv_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (key == "mip" || key == "no-coherence" || key == "relay" ||
          key == "hedge" || key == "service" ||
          key == "degrade-before-shed") {
        kv_[key] = "1";
        continue;
      }
      if (i + 1 >= argc) {
        std::cerr << "missing value for --" << key << "\n";
        std::exit(2);
      }
      kv_[key] = argv[++i];
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }
  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    const auto v = flags::parse_int(it->second);
    if (!v || *v < INT_MIN || *v > INT_MAX) {
      std::cerr << "bad value for --" << key << ": '" << it->second
                << "' (expected an integer)\n";
      std::exit(2);
    }
    return static_cast<int>(*v);
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    const auto v = flags::parse_double(it->second);
    if (!v) {
      std::cerr << "bad value for --" << key << ": '" << it->second
                << "' (expected a number)\n";
      std::exit(2);
    }
    return *v;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return kv_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> kv_;
};

int cmd_info() {
  std::cout << "rtcomp — rotate-tiling image composition "
               "(reproduction of Lin/Yang/Chung, IPPS 2001)\n\n";
  std::cout << "composition methods:";
  for (const std::string& m : compositing::compositor_names())
    std::cout << " " << m;
  std::cout << "\ncodecs:              raw rle trle bbox bbox2d\n"
            << "datasets (phantoms): engine brain head\n"
            << "renderers:           shearwarp raycast splat\n"
            << "partitions:          slab grid balanced\n"
            << "network presets:     sp2-hps (default), paper-example\n"
            << "topology presets:    flat sp2 paper fat-tree dragonfly "
               "cloud\n"
            << "executors:           pooled (default; fibers, scales to "
               "P=4096) threaded\n";
  return 0;
}

/// Scaling knobs shared by the single-shot and multi-frame render
/// paths: rank executor, network topology preset, and the "hier"
/// method's two-level schedule (docs/scaling.md). Returns 0, or 2 on
/// a usage error.
int parse_scaling_flags(const Args& a, harness::CompositionConfig& cfg) {
  if (a.has("executor")) {
    const std::string name = a.get("executor", "");
    const auto kind = comm::parse_executor_kind(name);
    if (!kind) {
      std::cerr << "unknown --executor: " << name
                << " (expected pooled or threaded)\n";
      return 2;
    }
    cfg.executor.kind = *kind;
  }
  cfg.executor.workers = a.get_int("workers", 0);
  if (cfg.executor.workers < 0) {
    std::cerr << "bad value for --workers: want >= 0 (0 = one per core)\n";
    return 2;
  }
  if (a.has("topology")) {
    const std::string name = a.get("topology", "");
    if (!comm::topology_preset(name.c_str(), &cfg.net)) {
      std::cerr << "unknown --topology: " << name
                << " (expected flat, sp2, paper, fat-tree, dragonfly or "
                   "cloud)\n";
      return 2;
    }
  }
  cfg.group_size = a.get_int("group-size", 0);
  if (cfg.group_size < 0) {
    std::cerr << "bad value for --group-size: want >= 0 "
                 "(0 = ceil(sqrt(P)))\n";
    return 2;
  }
  cfg.hier_intra = a.get("hier-intra", cfg.hier_intra);
  cfg.hier_inter = a.get("hier-inter", cfg.hier_inter);
  if (a.has("simd")) {
    // Wall-clock-only knob: every dispatch level produces the same
    // image and the same virtual-time numbers. A level above what the
    // CPU supports falls back with a stderr note, never a SIGILL.
    const std::string name = a.get("simd", "");
    if (!simd::request_level(name)) {
      std::cerr << "unknown --simd: " << name
                << " (expected auto, scalar, sse2 or avx2)\n";
      return 2;
    }
  }
  if (a.has("blend-threads")) {
    const int n = a.get_int("blend-threads", 1);
    if (n < 1) {
      std::cerr << "bad value for --blend-threads: want >= 1\n";
      return 2;
    }
    img::set_blend_threads(n);
  }
  return 0;
}

/// Fault-injection + resilience flags shared by the single-shot and
/// multi-frame render paths (docs/fault_model.md). The defaults leave
/// the plan disabled, so a plain render stays on the bit-identical
/// zero-fault fast path. Returns 0, or 2 on a usage error.
int parse_fault_flags(const Args& a, harness::CompositionConfig& cfg) {
  cfg.fault.seed = static_cast<std::uint64_t>(a.get_int("fault-seed", 1));
  cfg.fault.drop = a.get_double("fault-drop", 0.0);
  cfg.fault.corrupt = a.get_double("fault-corrupt", 0.0);
  cfg.fault.duplicate = a.get_double("fault-dup", 0.0);
  cfg.fault.delay = a.get_double("fault-delay", 0.0);
  cfg.fault.delay_mean = a.get_double("fault-delay-mean", 0.001);
  if (a.has("fault-crash-rank")) {
    comm::FaultPlan::Crash crash;
    crash.rank = a.get_int("fault-crash-rank", -1);
    crash.after_sends = a.get_int("fault-crash-after", -1);
    if (a.has("fault-crash-at"))
      crash.at_time = a.get_double("fault-crash-at", 0.0);
    if (crash.after_sends < 0 && !a.has("fault-crash-at"))
      crash.after_sends = 0;  // bare --fault-crash-rank: die at 1st send
    cfg.fault.crashes.push_back(crash);
  }
  if (a.has("fault-link")) {
    // S:D:DROP[:CORRUPT] — a per-link fault adder on the directed link
    // S→D (the chronically-bad-cable scenario the circuit breaker
    // targets).
    const std::string spec = a.get("fault-link", "");
    comm::FaultPlan::LinkFault lf;
    char tail = '\0';
    bool ok = std::sscanf(spec.c_str(), "%d:%d:%lf:%lf%c", &lf.src, &lf.dst,
                          &lf.drop, &lf.corrupt, &tail) == 4 &&
              tail == '\0';
    if (!ok) {
      lf.corrupt = 0.0;
      tail = '\0';
      ok = std::sscanf(spec.c_str(), "%d:%d:%lf%c", &lf.src, &lf.dst,
                       &lf.drop, &tail) == 3 &&
           tail == '\0';
    }
    if (!ok) {
      std::cerr << "bad --fault-link (want S:D:DROP[:CORRUPT]): " << spec
                << "\n";
      return 2;
    }
    cfg.fault.links.push_back(lf);
  }
  if (a.has("fault-slow")) {
    // R:FACTOR — rank R's local compute charges run FACTOR× slower (the
    // chronically degraded-node scenario the straggler detector flags).
    const std::string spec = a.get("fault-slow", "");
    comm::FaultPlan::Slow sl;
    char tail = '\0';
    const bool ok = std::sscanf(spec.c_str(), "%d:%lf%c", &sl.rank,
                                &sl.factor, &tail) == 2 &&
                    tail == '\0';
    if (!ok || sl.factor < 1.0) {
      std::cerr << "bad --fault-slow (want R:FACTOR, FACTOR >= 1): " << spec
                << "\n";
      return 2;
    }
    cfg.fault.slows.push_back(sl);
  }
  if (a.has("fault-jitter")) {
    // S:D:MEAN — every message on the directed link S→D arrives a
    // seeded uniform [MEAN/2, 3*MEAN/2) virtual seconds late.
    const std::string spec = a.get("fault-jitter", "");
    comm::FaultPlan::Jitter jt;
    char tail = '\0';
    const bool ok = std::sscanf(spec.c_str(), "%d:%d:%lf%c", &jt.src,
                                &jt.dst, &jt.mean, &tail) == 3 &&
                    tail == '\0';
    if (!ok || jt.mean < 0.0) {
      std::cerr << "bad --fault-jitter (want S:D:MEAN): " << spec << "\n";
      return 2;
    }
    cfg.fault.jitters.push_back(jt);
  }
  cfg.resilience.retries = a.get_int("retries", cfg.resilience.retries);
  cfg.resilience.timeout = a.get_double("rto", cfg.resilience.timeout);
  cfg.resilience.breaker_threshold =
      a.get_int("circuit-breaker-threshold", 0);
  cfg.resilience.breaker_cooldown =
      a.get_double("breaker-cooldown", cfg.resilience.breaker_cooldown);
  cfg.resilience.relay = a.has("relay");
  cfg.resilience.straggler_multiple = a.get_double("straggler-multiple", 0.0);
  cfg.resilience.straggler_window =
      a.get_int("straggler-window", cfg.resilience.straggler_window);
  cfg.resilience.hedge = a.has("hedge");
  cfg.deadline = a.get_double("deadline", 0.0);
  if (cfg.deadline < 0.0) {
    std::cerr << "bad --deadline (want seconds >= 0)\n";
    return 2;
  }
  const std::string on_loss = a.get("on-peer-loss", "blank");
  if (on_loss != "blank" && on_loss != "throw" && on_loss != "recompose") {
    std::cerr << "unknown --on-peer-loss: " << on_loss << "\n";
    return 2;
  }
  cfg.resilience.on_peer_loss =
      on_loss == "throw"
          ? comm::ResiliencePolicy::PeerLoss::kThrow
          : (on_loss == "recompose"
                 ? comm::ResiliencePolicy::PeerLoss::kRecompose
                 : comm::ResiliencePolicy::PeerLoss::kBlank);
  return 0;
}

/// Quality-ladder flags shared by the single-shot, multi-frame and
/// service render paths (docs/quality.md). Defaults keep the ladder
/// off: without --quality the composition runs the exact rung only and
/// every output stays byte-identical. Returns 0, or 2 on a usage
/// error.
int parse_quality_flags(const Args& a, harness::CompositionConfig& cfg) {
  if (a.has("quality")) {
    const std::string name = a.get("quality", "");
    const auto rung = quality::parse_rung(name);
    if (!rung) {
      std::cerr << "unknown --quality: " << name
                << " (expected exact, approx, progressive, stale or "
                   "blank)\n";
      return 2;
    }
    cfg.quality.max_rung = *rung;
  }
  if (a.has("max-error")) {
    const int e = a.get_int("max-error", 255);
    if (e < 0 || e > 255) {
      std::cerr << "bad value for --max-error: want 0..255\n";
      return 2;
    }
    cfg.quality.max_error = e;
  }
  if (a.has("progressive")) {
    const int f = a.get_int("progressive", 4);
    if (f < 2) {
      std::cerr << "bad value for --progressive: want a downsample "
                   "factor >= 2\n";
      return 2;
    }
    cfg.quality.coarse_factor = f;
  }
  if (a.has("saturation")) {
    const int s = a.get_int("saturation", 240);
    if (s < 128 || s > 255) {
      std::cerr << "bad value for --saturation: want 128..255\n";
      return 2;
    }
    cfg.quality.saturation = s;
  }
  cfg.quality.degrade_before_shed = a.has("degrade-before-shed");
  return 0;
}

/// --service: drive the render-service front end (service::run_service)
/// — N sessions of seeded synthetic traffic with admission control and
/// request batching — instead of one sweep or single shot.
int cmd_render_service(const Args& a) {
  service::ServiceConfig sc;
  sc.dataset = a.get("dataset", "engine");
  sc.ranks = a.get_int("ranks", 8);
  sc.volume_n = a.get_int("volume", 96);
  sc.image_size = a.get_int("image", 512);
  sc.renderer = a.get("renderer", "shearwarp");
  sc.max_in_flight = a.get_int("max-in-flight", 2);
  if (sc.max_in_flight < 1) {
    std::cerr << "bad value for --max-in-flight: want >= 1\n";
    return 2;
  }
  sc.coherence = !a.has("no-coherence");
  sc.fault_submission = a.get_int("fault-submission", -1);

  sc.traffic.sessions = a.get_int("sessions", 8);
  if (sc.traffic.sessions < 1) {
    std::cerr << "bad value for --sessions: want >= 1\n";
    return 2;
  }
  sc.traffic.requests_per_session = a.get_int("requests", 16);
  if (sc.traffic.requests_per_session < 1) {
    std::cerr << "bad value for --requests: want >= 1\n";
    return 2;
  }
  sc.traffic.arrival_rate = a.get_double("arrival-rate", 50.0);
  if (sc.traffic.arrival_rate <= 0.0) {
    std::cerr << "bad value for --arrival-rate: want > 0 requests/s\n";
    return 2;
  }
  sc.traffic.seed =
      static_cast<std::uint64_t>(a.get_int("traffic-seed", 1));
  sc.traffic.yaw0_deg = a.get_double("yaw", 0.0);
  sc.traffic.yaw_step_deg = a.get_double("yaw-step", 5.0);
  sc.traffic.pitch_deg = a.get_double("pitch", 20.0);
  sc.traffic.priority_classes = a.get_int("priority-classes", 1);
  if (sc.traffic.priority_classes < 1) {
    std::cerr << "bad value for --priority-classes: want >= 1\n";
    return 2;
  }

  const std::string adm = a.get("admission", "shed-oldest");
  if (adm != "shed-oldest" && adm != "reject-new") {
    std::cerr << "unknown --admission: " << adm
              << " (expected shed-oldest or reject-new)\n";
    return 2;
  }
  sc.admission = service::parse_admission_policy(adm);
  sc.queue_cap = a.get_int("queue-cap", 8);
  if (sc.queue_cap < 1) {
    std::cerr << "bad value for --queue-cap: want >= 1\n";
    return 2;
  }
  sc.session_deadline = a.get_double("session-deadline", 0.0);
  if (sc.session_deadline < 0.0) {
    std::cerr << "bad --session-deadline (want seconds >= 0)\n";
    return 2;
  }
  sc.quant_deg = a.get_double("quant", 1.0);

  sc.comp.method = a.get("method", "rt_n");
  sc.comp.initial_blocks = a.get_int("blocks", 3);
  sc.comp.codec = a.get("codec", "");
  sc.comp.record_spans = a.has("trace-out") || a.has("metrics-out");
  if (a.get("net", "sp2-hps") == "paper-example")
    sc.comp.net = comm::paper_example_model();
  if (const int rc = parse_scaling_flags(a, sc.comp); rc != 0) return rc;
  if (const int rc = parse_fault_flags(a, sc.comp); rc != 0) return rc;
  if (const int rc = parse_quality_flags(a, sc.comp); rc != 0) return rc;
  if (sc.comp.quality.degrade_before_shed && !sc.comp.quality.engaged()) {
    std::cerr << "--degrade-before-shed needs a quality ladder: pass "
                 "--quality approx|progressive|stale|blank\n";
    return 2;
  }

  const service::ServiceResult res = service::run_service(sc);
  std::cout << "render service over '" << sc.dataset << "', " << sc.ranks
            << " ranks, " << sc.renderer << " renderer, " << sc.comp.method
            << "/" << (sc.comp.codec.empty() ? "raw" : sc.comp.codec)
            << (sc.coherence ? "" : ", coherence off") << "\n"
            << "traffic: " << sc.traffic.sessions << " session(s) x "
            << sc.traffic.requests_per_session << " request(s) @ "
            << sc.traffic.arrival_rate << "/s, seed " << sc.traffic.seed
            << "\n\n";
  service::print_service(std::cout, sc, res);
  if (sc.comp.fault.enabled())
    std::cout << "faults: " << harness::fault_summary(res.stats) << "\n";

  if (a.has("trace-out")) {
    // Per-rank tracks carry every submission's spans (shifted onto the
    // service timeline); one extra track past the last rank carries
    // the service-level admit/shed/batch instants and the
    // render/queue/composite intervals.
    comm::RunStats traced = res.stats;
    comm::RankStats service_track;
    service_track.spans = res.service_spans;
    traced.ranks.push_back(std::move(service_track));
    harness::write_perfetto_trace(traced, a.get("trace-out", ""));
    std::cout << "wrote " << a.get("trace-out", "") << "\n";
  }
  if (a.has("metrics-out")) {
    harness::write_metrics_file(res.stats, a.get("metrics-out", ""));
    std::cout << "wrote " << a.get("metrics-out", "") << "\n";
  }
  return 0;
}

/// --frames K: drive a camera sweep through the frame pipeline
/// (frames::run_sequence) instead of one single-shot composition.
int cmd_render_frames(const Args& a) {
  frames::PipelineConfig pc;
  pc.dataset = a.get("dataset", "engine");
  pc.ranks = a.get_int("ranks", 8);
  pc.volume_n = a.get_int("volume", 96);
  pc.image_size = a.get_int("image", 512);
  pc.frames = a.get_int("frames", 8);
  pc.yaw0_deg = a.get_double("yaw", 0.0);
  pc.sweep_deg = a.get_double("sweep", 360.0);
  pc.pitch_deg = a.get_double("pitch", 20.0);
  pc.renderer = a.get("renderer", "shearwarp");
  pc.max_in_flight = a.get_int("max-in-flight", 2);
  pc.coherence = !a.has("no-coherence");
  pc.fault_frame = a.get_int("fault-frame", -1);
  pc.comp.method = a.get("method", "rt_n");
  pc.comp.initial_blocks = a.get_int("blocks", 3);
  pc.comp.codec = a.get("codec", "");
  pc.comp.gather = true;
  if (a.get("net", "sp2-hps") == "paper-example")
    pc.comp.net = comm::paper_example_model();
  if (const int rc = parse_scaling_flags(a, pc.comp); rc != 0) return rc;
  if (const int rc = parse_fault_flags(a, pc.comp); rc != 0) return rc;
  if (const int rc = parse_quality_flags(a, pc.comp); rc != 0) return rc;
  if (pc.comp.quality.degrade_before_shed) {
    std::cerr << "--degrade-before-shed needs --service\n";
    return 2;
  }
  pc.deadline = pc.comp.deadline;

  std::ofstream stream;
  std::unique_ptr<frames::PgmStreamSink> sink;
  if (a.has("stream")) {
    stream.open(a.get("stream", ""), std::ios::binary);
    if (!stream) {
      std::cerr << "cannot open --stream file: " << a.get("stream", "")
                << "\n";
      return 2;
    }
    sink = std::make_unique<frames::PgmStreamSink>(stream);
    pc.sink = sink.get();
  }

  const frames::SequenceResult seq = frames::run_sequence(pc);
  std::cout << "sweep of '" << pc.dataset << "', " << pc.ranks
            << " ranks, " << pc.renderer << " renderer, "
            << pc.comp.method << "/"
            << (pc.comp.codec.empty() ? "raw" : pc.comp.codec)
            << (pc.coherence ? "" : ", coherence off") << "\n\n";
  frames::print_sequence(std::cout, pc, seq);
  if (pc.fault_frame >= 0 &&
      pc.fault_frame < static_cast<int>(seq.frames.size()))
    std::cout << "frame " << pc.fault_frame << " faults:  "
              << harness::fault_summary(
                     seq.frames[static_cast<std::size_t>(pc.fault_frame)]
                         .run.stats)
              << "\n";
  if (sink != nullptr)
    std::cout << "wrote " << a.get("stream", "") << " ("
              << sink->frames_written() << " PGM frames)\n";
  return 0;
}

int cmd_render(const Args& a) {
  if (a.has("service")) return cmd_render_service(a);
  if (a.get_int("frames", 1) > 1) return cmd_render_frames(a);
  const std::string dataset = a.get("dataset", "engine");
  const int ranks = a.get_int("ranks", 8);
  const std::string method = a.get("method", "rt_n");
  const int blocks = a.get_int("blocks", 3);
  const std::string renderer = a.get("renderer", "shearwarp");
  const std::string partition = a.get("partition", "slab");
  const bool mip = a.has("mip");

  harness::Scene scene = harness::make_scene(
      dataset, a.get_int("volume", 96), a.get_int("image", 512),
      a.get_double("yaw", 30.0), a.get_double("pitch", 20.0));

  // Partition + render (by hand so renderer/mode are selectable).
  const render::Vec3 d = scene.camera.direction();
  const int axis = render::principal_axis(d);
  std::vector<vol::Brick> bricks;
  if (partition == "grid") {
    bricks = part::grid_2d(scene.volume.bounds(), ranks, (axis + 1) % 3,
                           (axis + 2) % 3);
  } else if (partition == "balanced") {
    bricks = part::balanced_slab_1d(scene.volume, scene.tf, ranks, axis);
  } else {
    bricks = part::slab_1d(scene.volume.bounds(), ranks, axis);
  }
  const double dir[3] = {d.x, d.y, d.z};
  const auto order = part::visibility_order(bricks, dir);
  const render::RenderMode rmode =
      mip ? render::RenderMode::kMip : render::RenderMode::kComposite;
  std::vector<img::Image> partials;
  for (int r = 0; r < ranks; ++r) {
    const vol::Brick& brick =
        bricks[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])];
    if (renderer == "raycast") {
      partials.push_back(render::render_raycast(scene.volume, scene.tf,
                                                brick, scene.camera, rmode));
    } else if (renderer == "splat") {
      partials.push_back(render::render_splat(scene.volume, scene.tf,
                                              brick, scene.camera, rmode));
    } else {
      partials.push_back(render::render_shearwarp(
          scene.volume, scene.tf, brick, scene.camera, rmode));
    }
  }

  harness::CompositionConfig cfg;
  cfg.method = method;
  cfg.initial_blocks = blocks;
  cfg.codec = a.get("codec", "");
  cfg.blend = mip ? img::BlendMode::kMax : img::BlendMode::kOver;
  cfg.gather = true;
  cfg.record_events = a.has("trace");
  cfg.record_spans = a.has("trace-out") || a.has("metrics-out");
  if (a.get("net", "sp2-hps") == "paper-example")
    cfg.net = comm::paper_example_model();

  if (const int rc = parse_scaling_flags(a, cfg); rc != 0) return rc;
  if (const int rc = parse_fault_flags(a, cfg); rc != 0) return rc;
  if (const int rc = parse_quality_flags(a, cfg); rc != 0) return rc;
  if (cfg.quality.max_rung >= quality::Rung::kStale) {
    std::cerr << "--quality " << quality::rung_name(cfg.quality.max_rung)
              << " needs --frames or --service (stale and blank are "
                 "frame-level rungs)\n";
    return 2;
  }
  if (cfg.quality.degrade_before_shed) {
    std::cerr << "--degrade-before-shed needs --service\n";
    return 2;
  }
  // Single shot has no pressure history: execute the requested rung
  // directly (the error contract may still demote it toward exact).
  cfg.quality_rung = cfg.quality.max_rung;

  const harness::CompositionRun run =
      harness::run_composition(cfg, partials);

  std::cout << "dataset=" << dataset << " ranks=" << ranks
            << " method=" << method << " blocks=" << blocks
            << " codec=" << (cfg.codec.empty() ? "raw" : cfg.codec)
            << (mip ? " (MIP)" : "") << "\n"
            << "composition time: " << run.time << " s (virtual)\n"
            << "wire traffic:     "
            << static_cast<double>(run.stats.total_bytes_sent()) / 1e6
            << " MB in " << run.stats.total_messages() << " messages\n";
  if (cfg.fault.enabled()) {
    std::cout << "faults:           "
              << harness::fault_summary(run.stats) << "\n";
    if (run.degraded)
      std::cout << "degraded result:  " << run.lost_pixels
                << " pixels substituted blank\n";
  }
  // Quality line only when a rung below exact executed, so plain runs
  // keep the legacy output byte-for-byte.
  if (run.stats.quality_rung != 0) {
    std::cout << "quality:          "
              << quality::rung_name(
                     static_cast<quality::Rung>(run.stats.quality_rung))
              << " rung, bound " << run.stats.error_bound
              << ", measured err " << run.stats.max_pixel_error << "\n";
    if (run.first_light > 0.0)
      std::cout << "first light:      " << run.first_light
                << " s (virtual)\n";
  }

  const std::string out = a.get("out", "");
  if (!out.empty()) {
    img::write_pgm(run.image, out);
    std::cout << "wrote " << out << "\n";
  }
  if (a.has("trace")) {
    harness::write_chrome_trace(run.stats, a.get("trace", ""));
    std::cout << "wrote " << a.get("trace", "") << "\n";
  }
  if (a.has("trace-out")) {
    harness::write_perfetto_trace(run.stats, a.get("trace-out", ""));
    std::cout << "wrote " << a.get("trace-out", "") << "\n";
  }
  if (a.has("metrics-out")) {
    harness::write_metrics_file(run.stats, a.get("metrics-out", ""));
    std::cout << "wrote " << a.get("metrics-out", "") << "\n";
  }
  return 0;
}

int cmd_schedule(const Args& a) {
  const int ranks = a.get_int("ranks", 3);
  const int blocks = a.get_int("blocks", 4);
  const std::string variant = a.get("variant", "any");
  core::RtVariant v = core::RtVariant::kGeneralized;
  if (variant == "n") v = core::RtVariant::kNrt;
  if (variant == "2n") v = core::RtVariant::kTwoNrt;
  const core::RtSchedule s = core::build_rt_schedule(ranks, blocks, v);
  std::cout << core::to_string(v) << ", P=" << ranks << ", " << blocks
            << " initial blocks, " << s.steps.size() << " steps\n";
  for (std::size_t k = 0; k < s.steps.size(); ++k) {
    std::cout << "step " << (k + 1) << ":\n";
    for (const core::Merge& m : s.steps[k].merges)
      std::cout << "  P" << m.sender << " -> P" << m.receiver
                << "  block " << m.block << "  (sender "
                << (m.sender_front ? "front" : "back") << ")\n";
  }
  std::cout << "final owners:";
  for (const int o : s.final_owner) std::cout << " " << o;
  std::cout << "\n";
  return 0;
}

int cmd_predict(const Args& a) {
  const int ranks = a.get_int("ranks", 32);
  const int blocks = a.get_int("blocks", 4);
  comm::NetworkModel net = comm::sp2_hps_model();
  if (a.has("topology") &&
      !comm::topology_preset(a.get("topology", "").c_str(), &net)) {
    std::cerr << "unknown --topology: " << a.get("topology", "")
              << " (expected flat, sp2, paper, fat-tree, dragonfly or "
                 "cloud)\n";
    return 2;
  }
  net.ts = a.get_double("ts", net.ts);
  net.tp_byte = a.get_double("tp", net.tp_byte);
  net.to_pixel = a.get_double("to", net.to_pixel);
  const auto pixels =
      static_cast<std::int64_t>(a.get_int("pixels", 512 * 512));

  const core::RtSchedule s = core::build_rt_schedule(
      ranks, blocks, core::RtVariant::kGeneralized);
  const core::Prediction p = core::predict_rt_time(s, pixels, 2, net);
  std::cout << "RT, P=" << ranks << ", " << blocks
            << " blocks, A=" << pixels << " px\n"
            << "predicted composition time: " << p.makespan << " s\n"
            << "total traffic: "
            << static_cast<double>(p.total_bytes) / 1e6 << " MB in "
            << p.total_messages << " messages\n";
  for (std::size_t k = 0; k < p.steps.size(); ++k)
    std::cout << "  step " << (k + 1)
              << ": ends " << p.steps[k].end_time << " s, max "
              << p.steps[k].max_rank_sends << " sends/rank\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: rtcomp <info|render|schedule|predict> "
                 "[--key value ...]\n";
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (cmd == "info") return cmd_info();
    if (cmd == "render") return cmd_render(args);
    if (cmd == "schedule") return cmd_schedule(args);
    if (cmd == "predict") return cmd_predict(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "unknown command: " << cmd << "\n";
  return 2;
}
