// Figures 1 and 2: the worked schedule examples. Prints the full
// reconstructed rotate-tiling schedule for P=3 with 4 initial blocks
// (Figure 1, 2N_RT) and P=4 with 3 initial blocks (Figure 2, N_RT),
// in the paper's notation: step k, P_s sends block A_s^k(m) to P_r.
#include <iostream>

#include "rtc/core/schedule.hpp"
#include "rtc/harness/table.hpp"

namespace {

void print_trace(const char* title, int p, int b0,
                 rtc::core::RtVariant variant) {
  using namespace rtc;
  std::cout << title << "\n";
  const core::RtSchedule s = core::build_rt_schedule(p, b0, variant);
  for (std::size_t k = 0; k < s.steps.size(); ++k) {
    std::cout << "  step " << (k + 1) << " (blocks at depth "
              << s.steps[k].depth << "):\n";
    for (const core::Merge& m : s.steps[k].merges) {
      std::cout << "    P" << m.sender << " sends block A^"
                << (k + 1) << "(" << m.block << ") to P" << m.receiver
                << "  [sender is " << (m.sender_front ? "front" : "back")
                << "]\n";
    }
  }
  std::cout << "  final ownership:";
  for (std::size_t b = 0; b < s.final_owner.size(); ++b)
    std::cout << " A(" << b << ")->P" << s.final_owner[b];
  std::cout << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    // Strict like the other benches: this one takes no options.
    std::cerr << "unknown option " << argv[1] << "\n";
    return 2;
  }
  std::cout << "== Figures 1 and 2: rotate-tiling schedule traces ==\n"
            << "(reconstructed order-correct schedule; the printed\n"
            << " equations of the paper are OCR-corrupted — DESIGN.md "
               "2.1)\n\n";
  print_trace("Figure 1: 2N_RT, P=3, 4 initial blocks", 3, 4,
              rtc::core::RtVariant::kTwoNrt);
  print_trace("Figure 2: N_RT, P=4, 3 initial blocks", 4, 3,
              rtc::core::RtVariant::kNrt);
  return 0;
}
