// Figure 6: composition time of BS, PP, 2N_RT(4 blocks) and N_RT(3
// blocks) for one dataset on 32 processors, theory and experiment.
#include "bench_common.hpp"
#include "rtc/costmodel/table1.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Figure 6: method comparison", o);
  const std::vector<img::Image> partials = bench::bench_partials(o);

  costmodel::Params mp;
  mp.ranks = o.ranks;
  mp.image_pixels =
      static_cast<std::int64_t>(o.image_size) * o.image_size;
  mp.net = o.net;
  const double a_wire = 2.0 * static_cast<double>(mp.image_pixels);

  const double t_bs = bench::run_time(o, "bswap", 1, "", partials);
  const double t_pp = bench::run_time(o, "pp", o.ranks, "", partials);
  const double t_2n = bench::run_time(o, "rt_2n", 4, "", partials);
  const double t_n = bench::run_time(o, "rt_n", 3, "", partials);

  harness::Table t({"method", "blocks", "theory [s]", "measured [s]"});
  t.add_row({"binary-swap", "1",
             harness::Table::num(costmodel::predict_binary_swap(mp).total(), 4),
             harness::Table::num(t_bs, 4)});
  t.add_row(
      {"parallel-pipelined", std::to_string(o.ranks),
       harness::Table::num(costmodel::predict_parallel_pipelined(mp).total(), 4),
       harness::Table::num(t_pp, 4)});
  t.add_row({"2N_RT", "4",
             harness::Table::num(
                 costmodel::literal_two_n_rt_time(a_wire, o.net, o.ranks, 4), 4),
             harness::Table::num(t_2n, 4)});
  t.add_row({"N_RT", "3",
             harness::Table::num(
                 costmodel::literal_n_rt_time(a_wire, o.net, o.ranks, 3), 4),
             harness::Table::num(t_n, 4)});
  t.print(std::cout);
  std::cout << "\npaper's ordering: N_RT <= 2N_RT < BS, PP\n";

  if (!o.json_out.empty()) {
    bench::write_golden_json(o.json_out, "fig6", o,
                             {{"binary-swap", t_bs},
                              {"parallel-pipelined", t_pp},
                              {"2N_RT(4)", t_2n},
                              {"N_RT(3)", t_n}});
  }
  {
    harness::CompositionConfig cfg;
    cfg.method = "rt_2n";
    cfg.initial_blocks = 4;
    cfg.net = o.net;
    bench::write_observability(o, cfg, partials);
  }
  return 0;
}
