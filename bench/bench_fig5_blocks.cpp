// Figure 5: composition time of the N_RT (a) and 2N_RT (b) methods vs
// the number of initial blocks of a sub-image, theory and experiment,
// on 32 processors.
//
// "theory" = the paper's Section 2.3 closed forms (with A as the wire
// size, which reproduces the worked optimal-N examples); "measured" =
// the simulator running the real schedule over the real pixels.
#include "bench_common.hpp"
#include "rtc/costmodel/table1.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Figure 5: RT composition time vs initial blocks",
                      o);
  const std::vector<img::Image> partials = bench::bench_partials(o);
  const double a_wire =
      2.0 * static_cast<double>(o.image_size) * o.image_size;
  std::vector<std::pair<std::string, double>> values;

  {
    std::cout << "(a) N_RT (P even)\n";
    harness::Table t({"blocks N", "theory T(N) [s]", "measured [s]"});
    double best_measured = 1e300;
    int best_n = 1;
    for (int n = 1; n <= 8; ++n) {
      const double theory =
          costmodel::literal_n_rt_time(a_wire, o.net, o.ranks, n);
      const double measured = bench::run_time(o, "rt_n", n, "", partials);
      if (measured < best_measured) {
        best_measured = measured;
        best_n = n;
      }
      values.emplace_back("rt_n/N" + std::to_string(n) + "_theory_s",
                          theory);
      values.emplace_back("rt_n/N" + std::to_string(n) + "_measured_s",
                          measured);
      t.add_row({std::to_string(n), harness::Table::num(theory, 4),
                 harness::Table::num(measured, 4)});
    }
    t.print(std::cout);
    std::cout << "measured best N = " << best_n
              << "   (paper reports N = 3)\n\n";
    values.emplace_back("rt_n/best_n", static_cast<double>(best_n));
  }

  {
    std::cout << "(b) 2N_RT (any P)\n";
    harness::Table t({"blocks 2N", "theory T(2N) [s]", "measured [s]"});
    double best_measured = 1e300;
    int best_n = 2;
    for (int n = 2; n <= 16; n += 2) {
      const double theory =
          costmodel::literal_two_n_rt_time(a_wire, o.net, o.ranks, n);
      const double measured = bench::run_time(o, "rt_2n", n, "", partials);
      if (measured < best_measured) {
        best_measured = measured;
        best_n = n;
      }
      values.emplace_back("rt_2n/N" + std::to_string(n) + "_theory_s",
                          theory);
      values.emplace_back("rt_2n/N" + std::to_string(n) + "_measured_s",
                          measured);
      t.add_row({std::to_string(n), harness::Table::num(theory, 4),
                 harness::Table::num(measured, 4)});
    }
    t.print(std::cout);
    std::cout << "measured best 2N = " << best_n
              << "   (paper reports 4)\n";
    values.emplace_back("rt_2n/best_n", static_cast<double>(best_n));
  }
  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "fig5_blocks", o, values);
  return 0;
}
