// Ablations of the design choices DESIGN.md calls out:
//  (1) RT message aggregation (Figure 1's batching) vs per-merge
//      messages — aggregation trades away the pipelining granularity
//      that creates the optimal-N effect;
//  (2) the order-correct two-segment ring (pp_exact) vs the paper's
//      loose ring — what correctness costs;
//  (3) radix-k (the modern generalization) vs rotate-tiling across k;
//  (4) N_RT/2N_RT across even and odd P (the applicability split the
//      paper's two variants exist for).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Ablations", o);
  const std::vector<img::Image> partials = bench::bench_partials(o);
  std::vector<std::pair<std::string, double>> values;

  {
    std::cout << "(1) RT message aggregation (rt_2n):\n";
    harness::Table t({"blocks", "per-merge msgs [s]", "aggregated [s]"});
    for (int n = 2; n <= 12; n += 2) {
      harness::CompositionConfig cfg;
      cfg.method = "rt_2n";
      cfg.initial_blocks = n;
      cfg.net = o.net;
      const double plain = harness::run_composition(cfg, partials).time;
      cfg.aggregate_messages = true;
      const double agg = harness::run_composition(cfg, partials).time;
      values.emplace_back("agg/N" + std::to_string(n) + "_permerge_s",
                          plain);
      values.emplace_back("agg/N" + std::to_string(n) + "_aggregated_s",
                          agg);
      t.add_row({std::to_string(n), harness::Table::num(plain, 4),
                 harness::Table::num(agg, 4)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "(2) order-correct ring vs loose ring:\n";
    harness::Table t({"variant", "time [s]", "MB sent"});
    for (const char* m : {"pp", "pp_exact"}) {
      harness::CompositionConfig cfg;
      cfg.method = m;
      cfg.net = o.net;
      const auto run = harness::run_composition(cfg, partials);
      values.emplace_back(std::string("ring/") + m + "_s", run.time);
      t.add_row({m, harness::Table::num(run.time, 4),
                 harness::Table::num(
                     static_cast<double>(run.stats.total_bytes_sent()) /
                         1e6,
                     2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "(3) radix-k vs rotate-tiling:\n";
    harness::Table t({"method", "param", "time [s]", "msgs/rank (max)"});
    for (const int k : {2, 4, 8}) {
      harness::CompositionConfig cfg;
      cfg.method = "radix";
      cfg.initial_blocks = k;
      cfg.net = o.net;
      const auto run = harness::run_composition(cfg, partials);
      values.emplace_back("radix/k" + std::to_string(k) + "_s", run.time);
      t.add_row({"radix", "k=" + std::to_string(k),
                 harness::Table::num(run.time, 4),
                 std::to_string(run.stats.max_messages_sent_by_rank())});
    }
    for (const int n : {2, 4}) {
      harness::CompositionConfig cfg;
      cfg.method = "rt_2n";
      cfg.initial_blocks = n;
      cfg.net = o.net;
      const auto run = harness::run_composition(cfg, partials);
      values.emplace_back("radix/rt2n_N" + std::to_string(n) + "_s",
                          run.time);
      t.add_row({"rt_2n", "N=" + std::to_string(n),
                 harness::Table::num(run.time, 4),
                 std::to_string(run.stats.max_messages_sent_by_rank())});
    }
    t.print(std::cout);
    std::cout << "\n";
  }

  {
    std::cout << "(4) variant applicability: odd vs even P (rt_2n, 4 "
                 "blocks; partials re-rendered per P):\n";
    harness::Table t({"P", "time [s]"});
    for (const int p : {15, 16, 17, 31, 32, 33}) {
      bench::BenchOptions po = o;
      po.ranks = p;
      const auto pp = bench::bench_partials(po);
      harness::CompositionConfig cfg;
      cfg.method = "rt_2n";
      cfg.initial_blocks = 4;
      cfg.net = o.net;
      const double time = harness::run_composition(cfg, pp).time;
      values.emplace_back("oddP/p" + std::to_string(p) + "_s", time);
      t.add_row({std::to_string(p), harness::Table::num(time, 4)});
    }
    t.print(std::cout);
  }
  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "ablation", o, values);
  return 0;
}
