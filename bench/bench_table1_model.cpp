// Table 1: the published cost model next to what the simulator
// actually measures, per method — steps, per-step block size, total
// communication and computation.
#include "bench_common.hpp"
#include "rtc/costmodel/table1.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Table 1: published model vs measured", o);
  const std::vector<img::Image> partials = bench::bench_partials(o);

  costmodel::Params mp;
  mp.ranks = o.ranks;
  mp.image_pixels =
      static_cast<std::int64_t>(o.image_size) * o.image_size;
  mp.net = o.net;
  const int s = costmodel::steps_log2(o.ranks);

  auto measured = [&](const std::string& method, int blocks) {
    harness::CompositionConfig cfg;
    cfg.method = method;
    cfg.initial_blocks = blocks;
    cfg.net = o.net;
    return harness::run_composition(cfg, partials);
  };

  harness::Table t({"method", "S(M)", "model comm [s]", "model comp [s]",
                    "model total [s]", "measured time [s]",
                    "measured MB sent", "max msgs/rank"});
  std::vector<std::pair<std::string, double>> golden;
  auto add = [&](const char* label, const std::string& method, int blocks,
                 int steps, const costmodel::MethodCost& mc) {
    const harness::CompositionRun run = measured(method, blocks);
    golden.emplace_back(label, run.time);
    t.add_row({label, std::to_string(steps),
               harness::Table::num(mc.comm, 4),
               harness::Table::num(mc.comp, 4),
               harness::Table::num(mc.total(), 4),
               harness::Table::num(run.time, 4),
               harness::Table::num(
                   static_cast<double>(run.stats.total_bytes_sent()) / 1e6,
                   2),
               std::to_string(run.stats.max_messages_sent_by_rank())});
  };

  add("BS", "bswap", 1, s, costmodel::predict_binary_swap(mp));
  add("PP", "pp", o.ranks, o.ranks - 1,
      costmodel::predict_parallel_pipelined(mp));
  add("2N_RT(4)", "rt_2n", 4, s, costmodel::predict_two_n_rt(mp, 4));
  add("N_RT(3)", "rt_n", 3, s, costmodel::predict_n_rt(mp, 3));
  t.print(std::cout);

  std::cout << "\nper-step breakdown, 2N_RT with 4 blocks (A_k is the "
               "paper's per-message block size):\n";
  const harness::CompositionRun rt = measured("rt_2n", 4);
  harness::Table bt({"step k", "A_k = A/(N*2^(k-1))", "measured end [s]",
                     "measured step [s]"});
  double prev = 0.0;
  for (int k = 1; k <= s; ++k) {
    const double end = rt.stats.mark_end(k);
    golden.emplace_back("2N_RT(4) step " + std::to_string(k), end);
    bt.add_row({std::to_string(k),
                std::to_string(mp.image_pixels / (4LL << (k - 1))),
                harness::Table::num(end, 4),
                harness::Table::num(end - prev, 4)});
    prev = end;
  }
  bt.print(std::cout);

  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "table1", o, golden);
  {
    harness::CompositionConfig cfg;
    cfg.method = "rt_2n";
    cfg.initial_blocks = 4;
    cfg.net = o.net;
    bench::write_observability(o, cfg, partials);
  }
  return 0;
}
