// Figure 8: composition time of BS, PP, 2N_RT(4) and N_RT(3) with and
// without the RLE and TRLE compression methods, on 32 processors.
// The bounding-rectangle codec (Ma et al.) is included as an extra
// column beyond the paper.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Figure 8: methods x compression", o);
  const std::vector<img::Image> partials = bench::bench_partials(o);

  struct Row {
    const char* label;
    const char* method;
    int blocks;
  };
  const Row rows[] = {
      {"binary-swap", "bswap", 1},
      {"parallel-pipelined", "pp", 0},
      {"2N_RT (4 blocks)", "rt_2n", 4},
      {"N_RT (3 blocks)", "rt_n", 3},
  };

  harness::Table t({"method", "none [s]", "RLE [s]", "TRLE [s]",
                    "bbox [s]"});
  for (const Row& r : rows) {
    const int blocks = r.blocks == 0 ? o.ranks : r.blocks;
    t.add_row({r.label,
               harness::Table::num(
                   bench::run_time(o, r.method, blocks, "", partials), 4),
               harness::Table::num(
                   bench::run_time(o, r.method, blocks, "rle", partials), 4),
               harness::Table::num(
                   bench::run_time(o, r.method, blocks, "trle", partials), 4),
               harness::Table::num(
                   bench::run_time(o, r.method, blocks, "bbox", partials),
                   4)});
  }
  t.print(std::cout);
  std::cout << "\npaper's claim: TRLE < RLE < none for every method\n";
  return 0;
}
