// Figure 8: composition time of BS, PP, 2N_RT(4) and N_RT(3) with and
// without the RLE and TRLE compression methods, on 32 processors.
// The bounding-rectangle codec (Ma et al.) is included as an extra
// column beyond the paper.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Figure 8: methods x compression", o);
  const std::vector<img::Image> partials = bench::bench_partials(o);

  struct Row {
    const char* label;
    const char* method;
    int blocks;
  };
  const Row rows[] = {
      {"binary-swap", "bswap", 1},
      {"parallel-pipelined", "pp", 0},
      {"2N_RT (4 blocks)", "rt_2n", 4},
      {"N_RT (3 blocks)", "rt_n", 3},
  };

  harness::Table t({"method", "none [s]", "RLE [s]", "TRLE [s]",
                    "bbox [s]"});
  std::vector<std::pair<std::string, double>> values;
  for (const Row& r : rows) {
    const int blocks = r.blocks == 0 ? o.ranks : r.blocks;
    std::vector<std::string> cells{r.label};
    for (const char* codec : {"", "rle", "trle", "bbox"}) {
      const double time =
          bench::run_time(o, r.method, blocks, codec, partials);
      values.emplace_back(std::string(r.method) + "/" +
                              (*codec ? codec : "none") + "_s",
                          time);
      cells.push_back(harness::Table::num(time, 4));
    }
    t.add_row(cells);
  }
  t.print(std::cout);
  std::cout << "\npaper's claim: TRLE < RLE < none for every method\n";
  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "fig8_compression", o, values);
  return 0;
}
