// Frame-pipeline bench: what bounded-depth pipelining and temporal
// coherence buy on an animation sweep, in exact virtual time.
//
// Runs the same K-frame camera sweep twice through frames::run_sequence:
// once strictly sequential with coherence off (max_in_flight = 1 —
// exactly K single-shot frames back to back) and once pipelined with
// the coherence cache on (max_in_flight = 2). The bench *asserts* the
// two headline claims before writing anything: the pipelined makespan
// is strictly below the sequential total, and the coherence cache
// scores a nonzero hit rate on the slow sweep (the slab partials'
// blank margins persist frame to frame). Exit 1 if either fails.
//
// Golden: bench/golden/frame_pipeline_engine_p16.json (P=16, 64^3
// engine, 256x256, 6 frames over a 30-degree sweep, rt_n/3/trle, no
// gather, no tracing — byte-identical with RTC_OBS=OFF).
#include "bench_common.hpp"

#include "rtc/frames/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  bench::BenchOptions defaults;
  defaults.ranks = 16;
  defaults.volume_n = 64;
  defaults.image_size = 256;
  const bench::BenchOptions o = bench::parse_options(argc, argv, defaults);
  bench::print_header("frame pipeline: sweep makespan + coherence", o);

  frames::PipelineConfig pc;
  pc.dataset = o.dataset;
  pc.ranks = o.ranks;
  pc.volume_n = o.volume_n;
  pc.image_size = o.image_size;
  pc.frames = 6;
  pc.yaw0_deg = 20.0;
  pc.sweep_deg = 30.0;  // slow sweep: high temporal coherence
  pc.comp.method = "rt_n";
  pc.comp.initial_blocks = 3;
  pc.comp.codec = "trle";
  pc.comp.net = o.net;
  pc.comp.gather = false;

  frames::PipelineConfig sequential = pc;
  sequential.max_in_flight = 1;
  sequential.coherence = false;
  const frames::SequenceResult base = frames::run_sequence(sequential);

  pc.max_in_flight = 2;
  pc.coherence = true;
  const frames::SequenceResult pipe = frames::run_sequence(pc);

  frames::print_sequence(std::cout, pc, pipe);
  std::cout << "\nsequential (depth 1, no coherence): "
            << harness::Table::num(base.makespan, 4) << " s -> speedup "
            << harness::Table::num(base.makespan / pipe.makespan, 3)
            << "x\n";

  // The two acceptance invariants, enforced here so CI fails loudly if
  // a cost-model change ever erases the pipeline's advantage.
  if (!(pipe.makespan < base.makespan)) {
    std::cerr << "FAIL: pipelined makespan " << pipe.makespan
              << " is not below the sequential total " << base.makespan
              << "\n";
    return 1;
  }
  if (!(pipe.coherence_hits > 0)) {
    std::cerr << "FAIL: coherence cache scored no hits on a slow sweep\n";
    return 1;
  }

  if (!o.json_out.empty()) {
    bench::write_golden_json(
        o.json_out, "frame_pipeline", o,
        {{"singleshot_total_s", base.makespan},
         {"pipelined_makespan_s", pipe.makespan},
         {"speedup", base.makespan / pipe.makespan},
         {"frames_per_s", pipe.frames_per_second()},
         {"queue_wait_s", pipe.total_queue_wait},
         {"hit_rate", pipe.hit_rate()},
         {"coherence_hits", static_cast<double>(pipe.coherence_hits)},
         {"coherence_misses", static_cast<double>(pipe.coherence_misses)},
         {"coherence_bytes_saved",
          static_cast<double>(pipe.coherence_bytes_saved)}});
  }
  return 0;
}
