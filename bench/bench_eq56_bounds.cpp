// Equations (5) and (6): the optimal-block-count bounds, reproducing
// the paper's worked example (P=32, Ts=0.005, Tp=0.00004, To=0.0002
// giving a 2N_RT bound of ~4.3), plus a sweep over P under the
// SP2-calibrated constants.
#include "bench_common.hpp"
#include "rtc/costmodel/table1.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  std::cout << "== Equations (5)/(6): optimal block-count bounds ==\n\n";
  std::vector<std::pair<std::string, double>> values;

  {
    const comm::NetworkModel net = comm::paper_example_model();
    const double a = 2.0 * 512 * 512;  // wire bytes of a 512^2 image
    std::cout << "paper worked example (P=32, Ts=0.005, Tp=0.00004, "
                 "To=0.0002):\n";
    std::cout << "  Eq.(5) 2N_RT bound = "
              << harness::Table::num(costmodel::eq5_bound(a, net, 32), 2)
              << "   (paper quotes 4.3)\n";
    std::cout << "  Eq.(6)  N_RT bound = "
              << harness::Table::num(costmodel::eq6_bound(a, net, 32), 2)
              << "   (paper quotes 3.4; see EXPERIMENTS.md on the "
                 "printed formula)\n\n";
  }

  const double a_wire =
      2.0 * static_cast<double>(o.image_size) * o.image_size;
  std::cout << "bounds and integer model optima vs P ("
            << (o.paper_net ? "paper-example" : "sp2-hps")
            << " constants):\n";
  harness::Table t({"P", "Eq5 bound", "Eq6 bound", "best 2N_RT blocks",
                    "best N_RT blocks"});
  for (const int p : {2, 4, 8, 16, 32, 64, 128}) {
    costmodel::Params mp;
    mp.ranks = p;
    mp.image_pixels =
        static_cast<std::int64_t>(o.image_size) * o.image_size;
    mp.net = o.net;
    const std::string key = "p" + std::to_string(p);
    values.emplace_back(key + "/eq5",
                        costmodel::eq5_bound(a_wire, o.net, p));
    values.emplace_back(key + "/eq6",
                        costmodel::eq6_bound(a_wire, o.net, p));
    values.emplace_back(
        key + "/best_2n_rt",
        static_cast<double>(costmodel::best_two_n_rt_blocks(mp, 64)));
    values.emplace_back(
        key + "/best_n_rt",
        static_cast<double>(costmodel::best_n_rt_blocks(mp, 64)));
    t.add_row({std::to_string(p),
               harness::Table::num(costmodel::eq5_bound(a_wire, o.net, p), 2),
               harness::Table::num(costmodel::eq6_bound(a_wire, o.net, p), 2),
               std::to_string(costmodel::best_two_n_rt_blocks(mp, 64)),
               std::to_string(costmodel::best_n_rt_blocks(mp, 64))});
  }
  t.print(std::cout);
  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "eq56_bounds", o, values);
  return 0;
}
