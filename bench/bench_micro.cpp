// Google-benchmark microbenchmarks for the hot paths: the "over"
// operator, the codecs, and schedule construction.
#include <benchmark/benchmark.h>

#include "rtc/compress/codec.hpp"
#include "rtc/core/schedule.hpp"
#include "rtc/image/ops.hpp"
#include "rtc/image/serialize.hpp"

namespace {

using namespace rtc;

img::Image sparse_image(int n) {
  img::Image im(n, n);
  for (int y = n / 4; y < 3 * n / 4; ++y)
    for (int x = n / 4; x < 3 * n / 4; ++x)
      im.at(x, y) = img::GrayA8{
          static_cast<std::uint8_t>((x * 7 + y * 13) & 0xff), 255};
  return im;
}

void BM_OverInPlace(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  img::Image dst = sparse_image(n);
  const img::Image src = sparse_image(n);
  for (auto _ : state) {
    img::over_in_place_back(dst.pixels(), src.pixels());
    benchmark::DoNotOptimize(dst.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() * dst.pixel_count());
}
BENCHMARK(BM_OverInPlace)->Arg(128)->Arg(512);

void BM_CodecEncode(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(512);
  const auto codec = compress::make_codec(name);
  const compress::BlockGeometry geom{512, 0};
  for (auto _ : state) {
    auto bytes = codec->encode(im.pixels(), geom);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * im.pixel_count());
}
BENCHMARK_CAPTURE(BM_CodecEncode, rle, "rle");
BENCHMARK_CAPTURE(BM_CodecEncode, trle, "trle");
BENCHMARK_CAPTURE(BM_CodecEncode, bbox, "bbox");

void BM_CodecDecode(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(512);
  const auto codec = compress::make_codec(name);
  const compress::BlockGeometry geom{512, 0};
  const auto bytes = codec->encode(im.pixels(), geom);
  std::vector<img::GrayA8> out(
      static_cast<std::size_t>(im.pixel_count()));
  for (auto _ : state) {
    codec->decode(bytes, out, geom);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * im.pixel_count());
}
BENCHMARK_CAPTURE(BM_CodecDecode, rle, "rle");
BENCHMARK_CAPTURE(BM_CodecDecode, trle, "trle");

void BM_BuildSchedule(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto s =
        core::build_rt_schedule(p, 4, core::RtVariant::kGeneralized);
    benchmark::DoNotOptimize(s.final_owner.data());
  }
}
BENCHMARK(BM_BuildSchedule)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
