// Google-benchmark microbenchmarks for the hot paths: the "over"
// operator, the codecs, and schedule construction.
#include <benchmark/benchmark.h>

#include "rtc/compress/codec.hpp"
#include "rtc/core/schedule.hpp"
#include "rtc/image/ops.hpp"
#include "rtc/image/serialize.hpp"

namespace {

using namespace rtc;

img::Image sparse_image(int n) {
  img::Image im(n, n);
  for (int y = n / 4; y < 3 * n / 4; ++y)
    for (int x = n / 4; x < 3 * n / 4; ++x)
      im.at(x, y) = img::GrayA8{
          static_cast<std::uint8_t>((x * 7 + y * 13) & 0xff), 255};
  return im;
}

void BM_OverInPlace(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  img::Image dst = sparse_image(n);
  const img::Image src = sparse_image(n);
  for (auto _ : state) {
    img::over_in_place_back(dst.pixels(), src.pixels());
    benchmark::DoNotOptimize(dst.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() * dst.pixel_count());
}
BENCHMARK(BM_OverInPlace)->Arg(128)->Arg(512);

void BM_CodecEncode(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(512);
  const auto codec = compress::make_codec(name);
  const compress::BlockGeometry geom{512, 0};
  for (auto _ : state) {
    auto bytes = codec->encode(im.pixels(), geom);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * im.pixel_count());
}
BENCHMARK_CAPTURE(BM_CodecEncode, rle, "rle");
BENCHMARK_CAPTURE(BM_CodecEncode, trle, "trle");
BENCHMARK_CAPTURE(BM_CodecEncode, bbox, "bbox");

void BM_CodecDecode(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(512);
  const auto codec = compress::make_codec(name);
  const compress::BlockGeometry geom{512, 0};
  const auto bytes = codec->encode(im.pixels(), geom);
  std::vector<img::GrayA8> out(
      static_cast<std::size_t>(im.pixel_count()));
  for (auto _ : state) {
    codec->decode(bytes, out, geom);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * im.pixel_count());
}
BENCHMARK_CAPTURE(BM_CodecDecode, rle, "rle");
BENCHMARK_CAPTURE(BM_CodecDecode, trle, "trle");

// The P=32 TRLE composition step: a rank receives one encoded block of
// A/P pixels (512x512 image, 32 ranks -> 8192-pixel blocks) and folds
// it into its local partial. "Unfused" is the legacy shape — decode
// into a freshly allocated intermediate image, then blend. "Fused" is
// the decode_blend path over a reused scratch: TRLE runs composite
// straight into the destination and blank structure is skipped.
constexpr int kStepWidth = 512;
constexpr std::int64_t kStepPixels = 512LL * 512 / 32;

void BM_DecodeBlendUnfused(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(kStepWidth);
  const auto codec = compress::make_codec(name);
  const img::PixelSpan span{16 * kStepPixels, 17 * kStepPixels};
  const compress::BlockGeometry geom{kStepWidth, span.begin};
  const auto bytes = codec->encode(im.view(span), geom);
  img::Image dst = sparse_image(kStepWidth);
  for (auto _ : state) {
    std::vector<img::GrayA8> incoming(
        static_cast<std::size_t>(span.size()));
    codec->decode(bytes, incoming, geom);
    img::blend_in_place(dst.view(span), incoming, img::BlendMode::kOver,
                        /*src_front=*/false);
    benchmark::DoNotOptimize(dst.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() * span.size());
}
BENCHMARK_CAPTURE(BM_DecodeBlendUnfused, trle, "trle");
BENCHMARK_CAPTURE(BM_DecodeBlendUnfused, rle, "rle");

void BM_DecodeBlendFused(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(kStepWidth);
  const auto codec = compress::make_codec(name);
  const img::PixelSpan span{16 * kStepPixels, 17 * kStepPixels};
  const compress::BlockGeometry geom{kStepWidth, span.begin};
  const auto bytes = codec->encode(im.view(span), geom);
  img::Image dst = sparse_image(kStepWidth);
  std::vector<img::GrayA8> scratch;
  for (auto _ : state) {
    codec->decode_blend(bytes, dst.view(span), geom,
                        img::BlendMode::kOver, /*src_front=*/false,
                        scratch);
    benchmark::DoNotOptimize(dst.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() * span.size());
}
BENCHMARK_CAPTURE(BM_DecodeBlendFused, trle, "trle");
BENCHMARK_CAPTURE(BM_DecodeBlendFused, rle, "rle");

// Encode into a pooled (reused) buffer vs a fresh allocation per block
// — the send side of the same composition step.
void BM_EncodeFreshAlloc(benchmark::State& state) {
  const img::Image im = sparse_image(kStepWidth);
  const auto codec = compress::make_codec("trle");
  const img::PixelSpan span{16 * kStepPixels, 17 * kStepPixels};
  const compress::BlockGeometry geom{kStepWidth, span.begin};
  for (auto _ : state) {
    auto bytes = codec->encode(im.view(span), geom);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * span.size());
}
BENCHMARK(BM_EncodeFreshAlloc);

void BM_EncodePooledBuffer(benchmark::State& state) {
  const img::Image im = sparse_image(kStepWidth);
  const auto codec = compress::make_codec("trle");
  const img::PixelSpan span{16 * kStepPixels, 17 * kStepPixels};
  const compress::BlockGeometry geom{kStepWidth, span.begin};
  std::vector<std::byte> bytes;
  for (auto _ : state) {
    bytes.clear();
    codec->encode_into(im.view(span), geom, bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * span.size());
}
BENCHMARK(BM_EncodePooledBuffer);

void BM_BuildSchedule(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto s =
        core::build_rt_schedule(p, 4, core::RtVariant::kGeneralized);
    benchmark::DoNotOptimize(s.final_owner.data());
  }
}
BENCHMARK(BM_BuildSchedule)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
