// Microbenchmarks for the hot paths: the "over" operator, the codecs,
// and schedule construction.
//
// Two modes:
//   * default — google-benchmark suite (args go to the benchmark
//     library: --benchmark_filter=..., etc.)
//   * --wallclock — measured-throughput mode for the perf CI gate:
//     runs each pixel/codec kernel at every SIMD dispatch level this
//     machine supports and reports Mpix/s and MB/s per kernel plus
//     SIMD-over-scalar speedups, optionally as JSON
//     (BENCH_wallclock.json) for scripts/check_wallclock.sh.
#include <benchmark/benchmark.h>

#include <chrono>
#include <climits>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rtc/common/flags.hpp"
#include "rtc/compress/codec.hpp"
#include "rtc/core/schedule.hpp"
#include "rtc/image/ops.hpp"
#include "rtc/image/serialize.hpp"
#include "rtc/simd/dispatch.hpp"

namespace {

using namespace rtc;

img::Image sparse_image(int n) {
  img::Image im(n, n);
  for (int y = n / 4; y < 3 * n / 4; ++y)
    for (int x = n / 4; x < 3 * n / 4; ++x)
      im.at(x, y) = img::GrayA8{
          static_cast<std::uint8_t>((x * 7 + y * 13) & 0xff), 255};
  return im;
}

void BM_OverInPlace(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  img::Image dst = sparse_image(n);
  const img::Image src = sparse_image(n);
  for (auto _ : state) {
    img::over_in_place_back(dst.pixels(), src.pixels());
    benchmark::DoNotOptimize(dst.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() * dst.pixel_count());
}
BENCHMARK(BM_OverInPlace)->Arg(128)->Arg(512);

void BM_CodecEncode(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(512);
  const auto codec = compress::make_codec(name);
  const compress::BlockGeometry geom{512, 0};
  for (auto _ : state) {
    auto bytes = codec->encode(im.pixels(), geom);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * im.pixel_count());
}
BENCHMARK_CAPTURE(BM_CodecEncode, rle, "rle");
BENCHMARK_CAPTURE(BM_CodecEncode, trle, "trle");
BENCHMARK_CAPTURE(BM_CodecEncode, bbox, "bbox");

void BM_CodecDecode(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(512);
  const auto codec = compress::make_codec(name);
  const compress::BlockGeometry geom{512, 0};
  const auto bytes = codec->encode(im.pixels(), geom);
  std::vector<img::GrayA8> out(
      static_cast<std::size_t>(im.pixel_count()));
  for (auto _ : state) {
    codec->decode(bytes, out, geom);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * im.pixel_count());
}
BENCHMARK_CAPTURE(BM_CodecDecode, rle, "rle");
BENCHMARK_CAPTURE(BM_CodecDecode, trle, "trle");

// The P=32 TRLE composition step: a rank receives one encoded block of
// A/P pixels (512x512 image, 32 ranks -> 8192-pixel blocks) and folds
// it into its local partial. "Unfused" is the legacy shape — decode
// into a freshly allocated intermediate image, then blend. "Fused" is
// the decode_blend path over a reused scratch: TRLE runs composite
// straight into the destination and blank structure is skipped.
constexpr int kStepWidth = 512;
constexpr std::int64_t kStepPixels = 512LL * 512 / 32;

void BM_DecodeBlendUnfused(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(kStepWidth);
  const auto codec = compress::make_codec(name);
  const img::PixelSpan span{16 * kStepPixels, 17 * kStepPixels};
  const compress::BlockGeometry geom{kStepWidth, span.begin};
  const auto bytes = codec->encode(im.view(span), geom);
  img::Image dst = sparse_image(kStepWidth);
  for (auto _ : state) {
    std::vector<img::GrayA8> incoming(
        static_cast<std::size_t>(span.size()));
    codec->decode(bytes, incoming, geom);
    img::blend_in_place(dst.view(span), incoming, img::BlendMode::kOver,
                        /*src_front=*/false);
    benchmark::DoNotOptimize(dst.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() * span.size());
}
BENCHMARK_CAPTURE(BM_DecodeBlendUnfused, trle, "trle");
BENCHMARK_CAPTURE(BM_DecodeBlendUnfused, rle, "rle");

void BM_DecodeBlendFused(benchmark::State& state, const char* name) {
  const img::Image im = sparse_image(kStepWidth);
  const auto codec = compress::make_codec(name);
  const img::PixelSpan span{16 * kStepPixels, 17 * kStepPixels};
  const compress::BlockGeometry geom{kStepWidth, span.begin};
  const auto bytes = codec->encode(im.view(span), geom);
  img::Image dst = sparse_image(kStepWidth);
  std::vector<img::GrayA8> scratch;
  for (auto _ : state) {
    codec->decode_blend(bytes, dst.view(span), geom,
                        img::BlendMode::kOver, /*src_front=*/false,
                        scratch);
    benchmark::DoNotOptimize(dst.pixels().data());
  }
  state.SetItemsProcessed(state.iterations() * span.size());
}
BENCHMARK_CAPTURE(BM_DecodeBlendFused, trle, "trle");
BENCHMARK_CAPTURE(BM_DecodeBlendFused, rle, "rle");

// Encode into a pooled (reused) buffer vs a fresh allocation per block
// — the send side of the same composition step.
void BM_EncodeFreshAlloc(benchmark::State& state) {
  const img::Image im = sparse_image(kStepWidth);
  const auto codec = compress::make_codec("trle");
  const img::PixelSpan span{16 * kStepPixels, 17 * kStepPixels};
  const compress::BlockGeometry geom{kStepWidth, span.begin};
  for (auto _ : state) {
    auto bytes = codec->encode(im.view(span), geom);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * span.size());
}
BENCHMARK(BM_EncodeFreshAlloc);

void BM_EncodePooledBuffer(benchmark::State& state) {
  const img::Image im = sparse_image(kStepWidth);
  const auto codec = compress::make_codec("trle");
  const img::PixelSpan span{16 * kStepPixels, 17 * kStepPixels};
  const compress::BlockGeometry geom{kStepWidth, span.begin};
  std::vector<std::byte> bytes;
  for (auto _ : state) {
    bytes.clear();
    codec->encode_into(im.view(span), geom, bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * span.size());
}
BENCHMARK(BM_EncodePooledBuffer);

void BM_BuildSchedule(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto s =
        core::build_rt_schedule(p, 4, core::RtVariant::kGeneralized);
    benchmark::DoNotOptimize(s.final_owner.data());
  }
}
BENCHMARK(BM_BuildSchedule)->Arg(8)->Arg(32)->Arg(128);

// ---------------------------------------------------------------------
// --wallclock mode: measured kernel throughput for the perf CI gate.

struct WallclockOptions {
  int image = 512;      ///< square test-image side
  int repeat = 5;       ///< samples per kernel; best throughput wins
  int blend_threads = 0;  ///< when > 0, also measure the tiled blend
  std::string simd;     ///< restrict to one level ("" = all supported)
  std::string json_out;
};

/// One measured kernel: best-of-`repeat` throughput. Each sample runs
/// `fn` in a doubling loop until it has spent >= 10 ms, so fast kernels
/// are timed over many iterations and slow ones are not padded.
double measure_mpix_s(std::int64_t pixels_per_call, int repeat,
                      const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  constexpr double kMinSampleSeconds = 0.010;
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    std::int64_t iters = 1;
    for (;;) {
      const auto t0 = clock::now();
      for (std::int64_t i = 0; i < iters; ++i) fn();
      const double s =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (s >= kMinSampleSeconds) {
        const double mpix =
            static_cast<double>(pixels_per_call * iters) / s / 1e6;
        if (mpix > best) best = mpix;
        break;
      }
      iters = s <= 0.0 ? iters * 8 : iters * 2;
    }
  }
  return best;
}

struct KernelResult {
  std::string key;  ///< "kernel/level"
  double mpix_s = 0.0;
  double mb_s = 0.0;  ///< raw pixel bytes (2 per GrayA8 pixel)
};

/// Measures every kernel at one dispatch level. The level is already
/// active; `level` only labels the keys.
void measure_level(const WallclockOptions& o, const std::string& level,
                   std::vector<KernelResult>& out) {
  const int n = o.image;
  const std::int64_t pixels = std::int64_t{n} * n;
  const img::Image src = sparse_image(n);
  img::Image dst = sparse_image(n);
  const auto codec = compress::make_codec("trle");
  const compress::BlockGeometry geom{n, 0};
  const auto encoded = codec->encode(src.pixels(), geom);
  std::vector<std::byte> enc_buf;
  std::vector<img::GrayA8> scratch;

  const auto add = [&](const std::string& kernel, double mpix) {
    out.push_back(KernelResult{kernel + "/" + level, mpix, mpix * 2.0});
  };
  add("over_front", measure_mpix_s(pixels, o.repeat, [&] {
        img::over_in_place_front(dst.pixels(), src.pixels());
      }));
  add("over_back", measure_mpix_s(pixels, o.repeat, [&] {
        img::over_in_place_back(dst.pixels(), src.pixels());
      }));
  add("max_blend", measure_mpix_s(pixels, o.repeat, [&] {
        img::max_in_place(dst.pixels(), src.pixels());
      }));
  add("count_non_blank", measure_mpix_s(pixels, o.repeat, [&] {
        benchmark::DoNotOptimize(img::count_non_blank(src.pixels()));
      }));
  add("trle_encode", measure_mpix_s(pixels, o.repeat, [&] {
        enc_buf.clear();
        codec->encode_into(src.pixels(), geom, enc_buf);
        benchmark::DoNotOptimize(enc_buf.data());
      }));
  add("trle_decode_blend", measure_mpix_s(pixels, o.repeat, [&] {
        codec->decode_blend(encoded, dst.pixels(), geom,
                            img::BlendMode::kOver, /*src_front=*/false,
                            scratch);
      }));
  if (o.blend_threads > 1) {
    img::set_blend_threads(o.blend_threads);
    add("over_back_tiled", measure_mpix_s(pixels, o.repeat, [&] {
          img::blend_in_place_tiled(dst.pixels(), src.pixels(),
                                    img::BlendMode::kOver,
                                    /*src_front=*/false);
        }));
    img::set_blend_threads(1);
  }
}

int wallclock_main(const WallclockOptions& o) {
  const simd::SimdLevel detected = simd::detected_level();
  std::vector<simd::SimdLevel> levels;
  if (o.simd.empty()) {
    // Every level this machine can run, scalar first (the baseline).
    levels.push_back(simd::SimdLevel::kScalar);
    if (detected >= simd::SimdLevel::kSse2)
      levels.push_back(simd::SimdLevel::kSse2);
    if (detected >= simd::SimdLevel::kAvx2)
      levels.push_back(simd::SimdLevel::kAvx2);
  } else if (o.simd == "auto") {
    levels.push_back(detected);
  } else {
    const auto lvl = simd::parse_simd_level(o.simd);
    if (!lvl) {
      std::cerr << "unknown --simd: " << o.simd
                << " (expected auto, scalar, sse2 or avx2)\n";
      return 2;
    }
    levels.push_back(*lvl);
  }

  std::cout << "== bench_micro --wallclock ==\n"
            << "image=" << o.image << "x" << o.image
            << " repeat=" << o.repeat
            << " detected=" << simd::to_string(detected) << "\n\n";

  std::vector<KernelResult> results;
  for (const simd::SimdLevel lvl : levels) {
    std::string note;
    simd::set_level(simd::resolve_level(lvl, detected, &note));
    if (!note.empty()) std::cerr << note << "\n";
    measure_level(o, simd::to_string(simd::active_level()), results);
  }
  simd::set_level(detected);  // restore auto dispatch

  // SIMD-over-scalar speedups, computable only when the scalar
  // baseline was measured in this same run.
  std::vector<std::pair<std::string, double>> speedups;
  for (const KernelResult& r : results) {
    const std::size_t slash = r.key.rfind('/');
    const std::string kernel = r.key.substr(0, slash);
    const std::string level = r.key.substr(slash + 1);
    if (level == "scalar") continue;
    for (const KernelResult& base : results) {
      if (base.key == kernel + "/scalar" && base.mpix_s > 0.0) {
        speedups.emplace_back(r.key, r.mpix_s / base.mpix_s);
        break;
      }
    }
  }

  std::cout << std::left << std::setw(28) << "kernel/level"
            << std::right << std::setw(12) << "Mpix/s" << std::setw(12)
            << "MB/s" << std::setw(10) << "speedup" << "\n";
  for (const KernelResult& r : results) {
    std::cout << std::left << std::setw(28) << r.key << std::right
              << std::fixed << std::setprecision(1) << std::setw(12)
              << r.mpix_s << std::setw(12) << r.mb_s;
    bool has_speedup = false;
    for (const auto& [key, s] : speedups) {
      if (key == r.key) {
        std::cout << std::setw(9) << std::setprecision(2) << s << "x";
        has_speedup = true;
        break;
      }
    }
    if (!has_speedup) std::cout << std::setw(10) << "-";
    std::cout << "\n";
    std::cout.unsetf(std::ios::fixed);
  }

  if (!o.json_out.empty()) {
    std::ostringstream os;
    os << std::setprecision(17);
    os << "{\n  \"bench\": \"bench_micro_wallclock\",\n"
       << "  \"image\": " << o.image << ",\n"
       << "  \"repeat\": " << o.repeat << ",\n"
       << "  \"detected\": \"" << simd::to_string(detected) << "\",\n"
       << "  \"kernels\": {";
    for (std::size_t i = 0; i < results.size(); ++i) {
      os << (i ? "," : "") << "\n    \"" << results[i].key
         << "\": {\"mpix_s\": " << results[i].mpix_s
         << ", \"mb_s\": " << results[i].mb_s << "}";
    }
    os << "\n  },\n  \"speedup\": {";
    for (std::size_t i = 0; i < speedups.size(); ++i) {
      os << (i ? "," : "") << "\n    \"" << speedups[i].first
         << "\": " << speedups[i].second;
    }
    os << "\n  }\n}\n";
    std::ofstream f(o.json_out);
    f << os.str();
    if (!f.good()) {
      std::cerr << "cannot write " << o.json_out << "\n";
      return 1;
    }
    std::cout << "\nwrote " << o.json_out << "\n";
  }
  return 0;
}

/// Strict flag parsing for --wallclock mode (rtc/common/flags.hpp
/// whole-string numbers; unknown flags are usage errors, exit 2).
int parse_and_run_wallclock(int argc, char** argv) {
  WallclockOptions o;
  o.json_out = "BENCH_wallclock.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_int = [&]() -> int {
      const std::string v = next();
      const auto parsed = flags::parse_int(v);
      if (!parsed || *parsed < 1 || *parsed > INT_MAX) {
        std::cerr << "bad value for " << a << ": '" << v
                  << "' (expected a positive integer)\n";
        std::exit(2);
      }
      return static_cast<int>(*parsed);
    };
    if (a == "--wallclock") {
      continue;
    } else if (a == "--image") {
      o.image = next_int();
    } else if (a == "--repeat") {
      o.repeat = next_int();
    } else if (a == "--blend-threads") {
      o.blend_threads = next_int();
    } else if (a == "--simd") {
      o.simd = next();
    } else if (a == "--json") {
      o.json_out = next();
    } else {
      std::cerr << "unknown option " << a << "\n";
      std::exit(2);
    }
  }
  return wallclock_main(o);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--wallclock")
      return parse_and_run_wallclock(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
