// Shared setup for the figure/table reproduction benches.
//
// Every bench accepts:  [--dataset engine|brain|head] [--ranks P]
//                       [--volume N] [--image S] [--paper-net]
// Defaults reproduce the paper's operating point: 32 processors,
// 512x512 gray images, SP2-calibrated network constants.
#pragma once

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "rtc/comm/network_model.hpp"
#include "rtc/harness/experiment.hpp"
#include "rtc/harness/scene.hpp"
#include "rtc/harness/table.hpp"

namespace rtc::bench {

struct BenchOptions {
  std::string dataset = "engine";
  int ranks = 32;
  int volume_n = 96;
  int image_size = 512;
  comm::NetworkModel net = comm::sp2_hps_model();
  bool paper_net = false;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--dataset") {
      o.dataset = next();
    } else if (a == "--ranks") {
      o.ranks = std::stoi(next());
    } else if (a == "--volume") {
      o.volume_n = std::stoi(next());
    } else if (a == "--image") {
      o.image_size = std::stoi(next());
    } else if (a == "--paper-net") {
      o.net = comm::paper_example_model();
      o.paper_net = true;
    } else {
      std::cerr << "unknown option " << a << "\n";
      std::exit(2);
    }
  }
  return o;
}

/// Renders the per-rank partial images once (slab partition along the
/// principal view axis, as rank order = depth order requires).
inline std::vector<img::Image> bench_partials(const BenchOptions& o) {
  const harness::Scene scene =
      harness::make_scene(o.dataset, o.volume_n, o.image_size);
  return harness::render_partials(scene, o.ranks,
                                  harness::PartitionKind::kSlab1D);
}

inline double run_time(const BenchOptions& o, const std::string& method,
                       int blocks, const std::string& codec,
                       const std::vector<img::Image>& partials) {
  harness::CompositionConfig cfg;
  cfg.method = method;
  cfg.initial_blocks = blocks;
  cfg.codec = codec;
  cfg.net = o.net;
  cfg.gather = false;
  return harness::run_composition(cfg, partials).time;
}

inline void print_header(const std::string& what, const BenchOptions& o) {
  std::cout << "== " << what << " ==\n"
            << "dataset=" << o.dataset << " P=" << o.ranks
            << " image=" << o.image_size << "x" << o.image_size
            << " volume=" << o.volume_n << "^3"
            << " net=" << (o.paper_net ? "paper-example" : "sp2-hps")
            << " (Ts=" << o.net.ts << " Tp=" << o.net.tp_byte
            << " To=" << o.net.to_pixel << ")\n\n";
}

}  // namespace rtc::bench
