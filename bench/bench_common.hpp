// Shared setup for the figure/table reproduction benches.
//
// Every bench accepts:  [--dataset engine|brain|head] [--ranks P]
//                       [--volume N] [--image S] [--paper-net]
//                       [--topology flat|sp2|paper|fat-tree|dragonfly|cloud]
//                       [--executor pooled|threaded] [--group-size G]
//                       [--simd auto|scalar|sse2|avx2]
// plus observability outputs (see docs/observability.md):
//                       [--json golden.json]      virtual-time numbers,
//                         17 significant digits — the CI golden gate
//                         bit-compares this file (check_bench_golden.sh)
//                       [--trace-out trace.json]  Perfetto span trace
//                       [--metrics-out m.txt]     per-step metrics table
// Defaults reproduce the paper's operating point: 32 processors,
// 512x512 gray images, SP2-calibrated network constants.
#pragma once

#include <climits>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rtc/comm/executor.hpp"
#include "rtc/comm/network_model.hpp"
#include "rtc/common/flags.hpp"
#include "rtc/simd/dispatch.hpp"
#include "rtc/harness/experiment.hpp"
#include "rtc/harness/metrics.hpp"
#include "rtc/harness/scene.hpp"
#include "rtc/harness/table.hpp"
#include "rtc/harness/trace.hpp"

namespace rtc::bench {

struct BenchOptions {
  std::string dataset = "engine";
  int ranks = 32;
  int volume_n = 96;
  int image_size = 512;
  comm::NetworkModel net = comm::sp2_hps_model();
  bool paper_net = false;
  std::string topology;  ///< preset name when --topology was given
  /// Rank executor for every composition the bench runs. Pooled fibers
  /// by default — required for the P>=1024 scaling points.
  comm::ExecutorConfig executor;
  int group_size = 0;       ///< "hier" ranks per group (0 = ceil(sqrt P))
  std::string json_out;     ///< golden virtual-time JSON (--json)
  std::string trace_out;    ///< Perfetto span trace (--trace-out)
  std::string metrics_out;  ///< per-step metrics table (--metrics-out)
};

/// `defaults` lets a bench pin its own operating point (e.g. the frame
/// pipeline's P=16 golden) while keeping every flag overridable.
inline BenchOptions parse_options(int argc, char** argv,
                                  BenchOptions defaults = BenchOptions{}) {
  BenchOptions o = std::move(defaults);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    // Strict whole-string parse: "--ranks 12x" or "--ranks abc" is a
    // usage error naming the flag, not an unhandled std::stoi throw.
    auto next_int = [&]() -> int {
      const std::string v = next();
      const auto parsed = flags::parse_int(v);
      if (!parsed || *parsed < INT_MIN || *parsed > INT_MAX) {
        std::cerr << "bad value for " << a << ": '" << v
                  << "' (expected an integer)\n";
        std::exit(2);
      }
      return static_cast<int>(*parsed);
    };
    if (a == "--dataset") {
      o.dataset = next();
    } else if (a == "--ranks") {
      o.ranks = next_int();
    } else if (a == "--volume") {
      o.volume_n = next_int();
    } else if (a == "--image") {
      o.image_size = next_int();
    } else if (a == "--topology") {
      o.topology = next();
      if (!comm::topology_preset(o.topology.c_str(), &o.net)) {
        std::cerr << "unknown --topology: " << o.topology
                  << " (expected flat, sp2, paper, fat-tree, dragonfly "
                     "or cloud)\n";
        std::exit(2);
      }
    } else if (a == "--executor") {
      const std::string v = next();
      const auto kind = comm::parse_executor_kind(v);
      if (!kind) {
        std::cerr << "unknown --executor: " << v
                  << " (expected pooled or threaded)\n";
        std::exit(2);
      }
      o.executor.kind = *kind;
    } else if (a == "--group-size") {
      o.group_size = next_int();
    } else if (a == "--simd") {
      // Dispatch level for the wall-clock pixel kernels. Virtual-time
      // results are identical at every level (the golden gate pins
      // that); this knob only moves wall-clock numbers.
      const std::string v = next();
      if (!simd::request_level(v)) {
        std::cerr << "unknown --simd: " << v
                  << " (expected auto, scalar, sse2 or avx2)\n";
        std::exit(2);
      }
    } else if (a == "--paper-net") {
      o.net = comm::paper_example_model();
      o.paper_net = true;
    } else if (a == "--json") {
      o.json_out = next();
    } else if (a == "--trace-out") {
      o.trace_out = next();
    } else if (a == "--metrics-out") {
      o.metrics_out = next();
    } else {
      std::cerr << "unknown option " << a << "\n";
      std::exit(2);
    }
  }
  return o;
}

/// Renders the per-rank partial images once (slab partition along the
/// principal view axis, as rank order = depth order requires).
inline std::vector<img::Image> bench_partials(const BenchOptions& o) {
  const harness::Scene scene =
      harness::make_scene(o.dataset, o.volume_n, o.image_size);
  return harness::render_partials(scene, o.ranks,
                                  harness::PartitionKind::kSlab1D);
}

inline double run_time(const BenchOptions& o, const std::string& method,
                       int blocks, const std::string& codec,
                       const std::vector<img::Image>& partials) {
  harness::CompositionConfig cfg;
  cfg.method = method;
  cfg.initial_blocks = blocks;
  cfg.codec = codec;
  cfg.net = o.net;
  cfg.executor = o.executor;
  cfg.group_size = o.group_size;
  cfg.gather = false;
  return harness::run_composition(cfg, partials).time;
}

/// Writes virtual-time numbers as a stable-format JSON object for the
/// CI golden gate: fixed key order, 17 significant digits (enough to
/// round-trip any double), one key per line. Virtual times depend only
/// on the message DAG, so two runs of the same build — or of any
/// correct build — produce byte-identical files; the gate can cmp(1)
/// them instead of parsing.
inline void write_golden_json(
    const std::string& path, const std::string& bench,
    const BenchOptions& o,
    const std::vector<std::pair<std::string, double>>& values) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\n  \"bench\": \"" << bench << "\",\n  \"dataset\": \""
     << o.dataset << "\",\n  \"ranks\": " << o.ranks
     << ",\n  \"image\": " << o.image_size << ",\n  \"volume\": "
     << o.volume_n << ",\n  \"values\": {";
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i ? "," : "") << "\n    \"" << values[i].first
       << "\": " << values[i].second;
  }
  os << "\n  }\n}\n";
  std::ofstream out(path);
  out << os.str();
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  std::cout << "wrote " << path << "\n";
}

/// Shared --trace-out/--metrics-out handling: rerun one traced
/// configuration and export its spans. The traced run's virtual times
/// are identical to the untraced measurements above it.
inline void write_observability(const BenchOptions& o,
                                const harness::CompositionConfig& cfg,
                                const std::vector<img::Image>& partials) {
  if (o.trace_out.empty() && o.metrics_out.empty()) return;
  harness::CompositionConfig traced = cfg;
  traced.record_spans = true;
  const harness::CompositionRun run =
      harness::run_composition(traced, partials);
  if (!o.trace_out.empty()) {
    harness::write_perfetto_trace(run.stats, o.trace_out);
    std::cout << "wrote " << o.trace_out << "\n";
  }
  if (!o.metrics_out.empty()) {
    harness::write_metrics_file(run.stats, o.metrics_out);
    std::cout << "wrote " << o.metrics_out << "\n";
  }
}

inline void print_header(const std::string& what, const BenchOptions& o) {
  std::cout << "== " << what << " ==\n"
            << "dataset=" << o.dataset << " P=" << o.ranks
            << " image=" << o.image_size << "x" << o.image_size
            << " volume=" << o.volume_n << "^3"
            << " net="
            << (!o.topology.empty()
                    ? o.topology
                    : (o.paper_net ? "paper-example" : "sp2-hps"))
            << " (Ts=" << o.net.ts << " Tp=" << o.net.tp_byte
            << " To=" << o.net.to_pixel << ")\n\n";
}

}  // namespace rtc::bench
