// Whole-frame view (extension): the data-partitioning stage's effect.
// The authors' companion paper [15] balances the *rendering* workload
// (solid voxels — shear-warp skips the rest); this bench reports the
// per-rank render imbalance and the modeled frame time
// (render stage + composition stage) for uniform 1-D, balanced 1-D
// and 2-D grid partitions.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Partitioning: render balance and frame time", o);

  const harness::Scene scene =
      harness::make_scene(o.dataset, o.volume_n, o.image_size);

  harness::Table t({"partition", "solid voxels min..max", "imbalance",
                    "render [s]", "composition [s]", "frame [s]"});
  std::vector<std::pair<std::string, double>> values;
  struct Row {
    const char* label;
    const char* key;
    harness::PartitionKind kind;
  };
  for (const Row row :
       {Row{"uniform 1-D", "slab1d", harness::PartitionKind::kSlab1D},
        Row{"balanced 1-D", "balanced1d",
            harness::PartitionKind::kBalanced1D},
        Row{"2-D grid", "grid2d", harness::PartitionKind::kGrid2D}}) {
    const harness::RenderedScene rs =
        harness::render_scene(scene, o.ranks, row.kind);
    const auto [mn, mx] = std::minmax_element(rs.solid_voxels.begin(),
                                              rs.solid_voxels.end());
    double mean = 0.0;
    for (const auto v : rs.solid_voxels) mean += static_cast<double>(v);
    mean /= static_cast<double>(rs.solid_voxels.size());
    const double imbalance =
        mean > 0.0 ? static_cast<double>(*mx) / mean : 0.0;

    harness::CompositionConfig cfg;
    cfg.method = "rt_2n";
    cfg.initial_blocks = 4;
    cfg.codec = "trle";
    cfg.net = o.net;
    const double comp = harness::run_composition(cfg, rs.partials).time;
    const double render = harness::render_stage_time(rs);

    const std::string key = row.key;
    values.emplace_back(key + "/imbalance", imbalance);
    values.emplace_back(key + "/render_s", render);
    values.emplace_back(key + "/composition_s", comp);
    t.add_row({row.label,
               std::to_string(*mn) + " .. " + std::to_string(*mx),
               harness::Table::num(imbalance, 2),
               harness::Table::num(render, 4),
               harness::Table::num(comp, 4),
               harness::Table::num(render + comp, 4)});
  }
  t.print(std::cout);
  std::cout << "\nimbalance = slowest rank / mean (1.00 is perfect)\n";
  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "partitioning", o, values);
  return 0;
}
