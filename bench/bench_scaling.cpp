// Scalability extension (beyond the paper's fixed P=32): composition
// time vs processor count for every method, same dataset and network.
// The crossovers this sweeps out are the paper's motivation — PP's
// (P-1)*Ts startup blowing up, BS's power-of-two restriction, RT
// tracking the best of both.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Scaling: composition time vs P", o);

  harness::Table t({"P", "bswap [s]", "pp [s]", "radix4 [s]",
                    "rt_2n(4) [s]", "rt best-N [s]", "best N"});
  for (const int p : {2, 4, 8, 16, 32, 64}) {
    // bswap needs 2^k; odd-P scalability lives in the table below.
    bench::BenchOptions po = o;
    po.ranks = p;
    const std::vector<img::Image> partials = bench::bench_partials(po);

    auto timed = [&](const std::string& m, int blocks) {
      harness::CompositionConfig cfg;
      cfg.method = m;
      cfg.initial_blocks = blocks;
      cfg.net = o.net;
      return harness::run_composition(cfg, partials).time;
    };

    double best = 1e300;
    int best_n = 1;
    for (int n = 1; n <= 8; ++n) {
      const double v = timed("rt", n);
      if (v < best) {
        best = v;
        best_n = n;
      }
    }
    t.add_row({std::to_string(p), harness::Table::num(timed("bswap", 1), 4),
               harness::Table::num(timed("pp", p), 4),
               harness::Table::num(timed("radix", 4), 4),
               harness::Table::num(timed("rt_2n", 4), 4),
               harness::Table::num(best, 4), std::to_string(best_n)});
  }
  t.print(std::cout);

  // Non-power-of-two territory — the RT method's raison d'être. The
  // folded binary-swap ("bswap_any") is the practitioner workaround.
  std::cout << "\narbitrary P (bswap via fold phase):\n";
  harness::Table t2({"P", "bswap_any [s]", "pp [s]", "rt_2n(4) [s]"});
  for (const int p : {6, 11, 17, 24, 31, 33}) {
    bench::BenchOptions po = o;
    po.ranks = p;
    const std::vector<img::Image> partials = bench::bench_partials(po);
    auto timed = [&](const std::string& m, int blocks) {
      harness::CompositionConfig cfg;
      cfg.method = m;
      cfg.initial_blocks = blocks;
      cfg.net = o.net;
      return harness::run_composition(cfg, partials).time;
    };
    t2.add_row({std::to_string(p),
                harness::Table::num(timed("bswap_any", 1), 4),
                harness::Table::num(timed("pp", p), 4),
                harness::Table::num(timed("rt_2n", 4), 4)});
  }
  t2.print(std::cout);
  return 0;
}
