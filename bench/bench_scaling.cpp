// Scalability extension (beyond the paper's fixed P=32): composition
// time vs processor count for every method, same dataset and network.
// The crossovers this sweeps out are the paper's motivation — PP's
// (P-1)*Ts startup blowing up, BS's power-of-two restriction, RT
// tracking the best of both.
//
// Three sections:
//   1. power-of-two P up to 64 on rendered partials (all methods),
//   2. arbitrary P on rendered partials (bswap_any fold workaround),
//   3. the large-P trajectory: P in {64, 256, 1024} on synthetic
//      partials (rendering 1024 slabs would dwarf the composition
//      being measured), comparing direct / bswap_any / rt against the
//      two-level "hier" schedule. This section is the golden-gated one:
//      --json writes its virtual times (scaling_p1024.json in
//      bench/golden/), and it only runs under the pooled executor —
//      P=1024 kernel threads is exactly what the fiber pool replaces.
#include "bench_common.hpp"

namespace {

using namespace rtc;

/// Deterministic synthetic partial: a per-rank opaque band plus an
/// LCG-speckled body. Content never affects raw-codec virtual times
/// (the model charges per pixel moved, not per pixel value); it only
/// keeps the images honest for anyone dumping them.
img::Image synthetic_partial(int size, int rank) {
  img::Image im(size, size);
  std::uint64_t s = 0x9e3779b97f4a7c15ULL +
                    static_cast<std::uint64_t>(rank) * 0xbf58476d1ce4e5b9ULL;
  auto next = [&s]() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(s >> 33);
  };
  for (img::GrayA8& px : im.pixels()) {
    const std::uint32_t r = next();
    if ((r & 7u) == 0u) {  // ~1/8 coverage: sparse, like a thin slab
      px.a = static_cast<std::uint8_t>(64 + ((r >> 8) & 0x7fu));
      px.v = static_cast<std::uint8_t>((r >> 16) % (px.a + 1u));
    }
  }
  return im;
}

double timed_at_scale(const bench::BenchOptions& o, const std::string& m,
                      int blocks, int group_size,
                      const std::vector<img::Image>& partials) {
  harness::CompositionConfig cfg;
  cfg.method = m;
  cfg.initial_blocks = blocks;
  cfg.net = o.net;
  cfg.executor = o.executor;
  cfg.group_size = group_size;
  cfg.gather = false;
  return harness::run_composition(cfg, partials).time;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Scaling: composition time vs P", o);

  harness::Table t({"P", "bswap [s]", "pp [s]", "radix4 [s]",
                    "rt_2n(4) [s]", "rt best-N [s]", "best N"});
  for (const int p : {2, 4, 8, 16, 32, 64}) {
    // bswap needs 2^k; odd-P scalability lives in the table below.
    bench::BenchOptions po = o;
    po.ranks = p;
    const std::vector<img::Image> partials = bench::bench_partials(po);

    auto timed = [&](const std::string& m, int blocks) {
      harness::CompositionConfig cfg;
      cfg.method = m;
      cfg.initial_blocks = blocks;
      cfg.net = o.net;
      cfg.executor = o.executor;
      return harness::run_composition(cfg, partials).time;
    };

    double best = 1e300;
    int best_n = 1;
    for (int n = 1; n <= 8; ++n) {
      const double v = timed("rt", n);
      if (v < best) {
        best = v;
        best_n = n;
      }
    }
    t.add_row({std::to_string(p), harness::Table::num(timed("bswap", 1), 4),
               harness::Table::num(timed("pp", p), 4),
               harness::Table::num(timed("radix", 4), 4),
               harness::Table::num(timed("rt_2n", 4), 4),
               harness::Table::num(best, 4), std::to_string(best_n)});
  }
  t.print(std::cout);

  // Non-power-of-two territory — the RT method's raison d'être. The
  // folded binary-swap ("bswap_any") is the practitioner workaround.
  std::cout << "\narbitrary P (bswap via fold phase):\n";
  harness::Table t2({"P", "bswap_any [s]", "pp [s]", "rt_2n(4) [s]"});
  for (const int p : {6, 11, 17, 24, 31, 33}) {
    bench::BenchOptions po = o;
    po.ranks = p;
    const std::vector<img::Image> partials = bench::bench_partials(po);
    auto timed = [&](const std::string& m, int blocks) {
      harness::CompositionConfig cfg;
      cfg.method = m;
      cfg.initial_blocks = blocks;
      cfg.net = o.net;
      cfg.executor = o.executor;
      return harness::run_composition(cfg, partials).time;
    };
    t2.add_row({std::to_string(p),
                harness::Table::num(timed("bswap_any", 1), 4),
                harness::Table::num(timed("pp", p), 4),
                harness::Table::num(timed("rt_2n", 4), 4)});
  }
  t2.print(std::cout);

  // Large-P trajectory. Thread-per-rank would need 1024 kernel threads
  // here; the fiber pool runs it on a handful of workers with
  // bit-identical virtual times, so the trajectory is golden-gateable.
  if (o.executor.kind != comm::ExecutorKind::kPooled) {
    std::cout << "\nlarge-P trajectory skipped (needs --executor pooled)\n";
    return 0;
  }
  const int scale_image = 256;
  const int hier_group = 32;
  std::cout << "\nlarge P (synthetic partials, image=" << scale_image << "x"
            << scale_image << ", hier group=" << hier_group << "):\n";
  harness::Table t3({"P", "direct [s]", "bswap_any [s]", "rt(4) [s]",
                     "hier [s]"});
  std::vector<std::pair<std::string, double>> golden;
  for (const int p : {64, 256, 1024}) {
    bench::BenchOptions po = o;
    po.ranks = p;
    po.image_size = scale_image;
    std::vector<img::Image> partials;
    partials.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r)
      partials.push_back(synthetic_partial(scale_image, r));
    const double v_direct = timed_at_scale(po, "direct", 1, 0, partials);
    const double v_bswap = timed_at_scale(po, "bswap_any", 1, 0, partials);
    const double v_rt = timed_at_scale(po, "rt", 4, 0, partials);
    const double v_hier =
        timed_at_scale(po, "hier", 4, hier_group, partials);
    t3.add_row({std::to_string(p), harness::Table::num(v_direct, 4),
                harness::Table::num(v_bswap, 4),
                harness::Table::num(v_rt, 4),
                harness::Table::num(v_hier, 4)});
    const std::string tag = "p" + std::to_string(p);
    golden.emplace_back(tag + "/direct", v_direct);
    golden.emplace_back(tag + "/bswap_any", v_bswap);
    golden.emplace_back(tag + "/rt4", v_rt);
    golden.emplace_back(tag + "/hier" + std::to_string(hier_group), v_hier);
  }
  t3.print(std::cout);

  if (!o.json_out.empty()) {
    bench::BenchOptions go = o;
    go.ranks = 1024;
    go.image_size = scale_image;
    bench::write_golden_json(o.json_out, "scaling", go, golden);
  }
  return 0;
}
