// Figure 7: composition time of the RT methods with and without TRLE
// vs the number of initial blocks, on 32 processors.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Figure 7: RT with/without TRLE vs initial blocks",
                      o);
  const std::vector<img::Image> partials = bench::bench_partials(o);
  std::vector<std::pair<std::string, double>> values;

  {
    std::cout << "(a) N_RT\n";
    harness::Table t({"blocks N", "plain [s]", "TRLE [s]", "speedup"});
    for (int n = 1; n <= 8; ++n) {
      const double plain = bench::run_time(o, "rt_n", n, "", partials);
      const double trle = bench::run_time(o, "rt_n", n, "trle", partials);
      values.emplace_back("rt_n/N" + std::to_string(n) + "_plain_s",
                          plain);
      values.emplace_back("rt_n/N" + std::to_string(n) + "_trle_s", trle);
      t.add_row({std::to_string(n), harness::Table::num(plain, 4),
                 harness::Table::num(trle, 4),
                 harness::Table::num(plain / trle, 2)});
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  {
    std::cout << "(b) 2N_RT\n";
    harness::Table t({"blocks 2N", "plain [s]", "TRLE [s]", "speedup"});
    for (int n = 2; n <= 16; n += 2) {
      const double plain = bench::run_time(o, "rt_2n", n, "", partials);
      const double trle = bench::run_time(o, "rt_2n", n, "trle", partials);
      values.emplace_back("rt_2n/N" + std::to_string(n) + "_plain_s",
                          plain);
      values.emplace_back("rt_2n/N" + std::to_string(n) + "_trle_s",
                          trle);
      t.add_row({std::to_string(n), harness::Table::num(plain, 4),
                 harness::Table::num(trle, 4),
                 harness::Table::num(plain / trle, 2)});
    }
    t.print(std::cout);
  }
  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "fig7_trle", o, values);
  return 0;
}
