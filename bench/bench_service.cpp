// Render-service bench: N concurrent sessions of seeded synthetic
// traffic over one P-rank world, in exact virtual time.
//
// Drives service::run_service at a deliberately overloaded operating
// point (open-loop arrivals faster than the pipeline drains), so the
// admission policy, the batcher and the latency distribution all do
// real work. Before writing anything the bench *asserts* the service
// invariants: the run is byte-identical across the pooled and threaded
// executors (virtual time never depends on host scheduling), the
// overload actually shed requests, and the batcher coalesced shared
// views. Exit 1 if any fails.
//
// Golden: bench/golden/service_p32.json (P=32, 48^3 engine, 128x128,
// 8 sessions x 6 requests @ 200/s, shed-oldest @ cap 2, depth 2,
// rt_n/3/trle — byte-identical across runs and executors).
#include "bench_common.hpp"

#include "rtc/service/service.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  bench::BenchOptions defaults;
  defaults.ranks = 32;
  defaults.volume_n = 48;
  defaults.image_size = 128;
  const bench::BenchOptions o = bench::parse_options(argc, argv, defaults);
  bench::print_header("render service: admission + batching under load", o);

  service::ServiceConfig sc;
  sc.dataset = o.dataset;
  sc.ranks = o.ranks;
  sc.volume_n = o.volume_n;
  sc.image_size = o.image_size;
  sc.max_in_flight = 2;
  sc.traffic.sessions = 8;
  sc.traffic.requests_per_session = 6;
  sc.traffic.arrival_rate = 200.0;  // open-loop overload
  sc.traffic.seed = 1;
  sc.traffic.yaw_step_deg = 5.0;
  sc.queue_cap = 2;
  sc.admission = service::AdmissionPolicy::kShedOldest;
  sc.quant_deg = 1.0;
  sc.comp.method = "rt_n";
  sc.comp.initial_blocks = 3;
  sc.comp.codec = "trle";
  sc.comp.net = o.net;
  sc.comp.group_size = o.group_size;

  sc.comp.executor = o.executor;
  const service::ServiceResult res = service::run_service(sc);

  // Cross-executor determinism: the virtual timeline must not depend
  // on how ranks are scheduled onto host threads.
  service::ServiceConfig other = sc;
  other.comp.executor.kind =
      o.executor.kind == comm::ExecutorKind::kPooled
          ? comm::ExecutorKind::kThreaded
          : comm::ExecutorKind::kPooled;
  const service::ServiceResult res2 = service::run_service(other);

  service::print_service(std::cout, sc, res);

  if (res.makespan != res2.makespan ||
      res.deliveries.size() != res2.deliveries.size() ||
      res.latency_percentile(95.0) != res2.latency_percentile(95.0)) {
    std::cerr << "FAIL: pooled and threaded executors disagree on the "
                 "virtual timeline\n";
    return 1;
  }
  if (res.stats.total_session_sheds() <= 0) {
    std::cerr << "FAIL: overloaded service shed nothing — admission "
                 "control never engaged\n";
    return 1;
  }
  if (res.stats.total_batches_joined() <= 0) {
    std::cerr << "FAIL: no requests coalesced on a shared orbit\n";
    return 1;
  }

  if (!o.json_out.empty()) {
    bench::write_golden_json(
        o.json_out, "service", o,
        {{"makespan_s", res.makespan},
         {"deliveries", static_cast<double>(res.deliveries.size())},
         {"submissions", static_cast<double>(res.submissions.size())},
         {"coalesced",
          static_cast<double>(res.stats.total_batches_joined())},
         {"shed", static_cast<double>(res.stats.total_session_sheds())},
         {"latency_mean_s", res.latency_mean()},
         {"latency_p95_s", res.latency_percentile(95.0)},
         {"latency_max_s", res.latency_max()},
         {"pipeline_queue_wait_s", res.total_queue_wait},
         {"deliveries_per_s", res.delivered_per_second()}});
  }
  return 0;
}
