// Quality-degradation ladder bench: virtual-time cost and measured
// error of the exact / approximate / progressive rungs at one
// operating point, with the error CONTRACT asserted before anything is
// written.
//
// Invariants checked (exit 1 on violation):
//   * the approximate rung never slows the modeled frame down and its
//     measured error obeys the reported a-priori bound,
//   * the progressive rung's first light lands strictly before the
//     refined frame and the refined frame is bit-identical to exact,
//   * --max-error 0 demotes every rung to exact, byte-identically,
//   * pooled and threaded executors agree bit-exactly on every rung.
//
// Golden: bench/golden/quality_p16.json (P=16, 48^3 engine, 128x128,
// bswap/raw — byte-identical across runs and executors).
#include "bench_common.hpp"

#include <cstring>

#include "rtc/image/ops.hpp"
#include "rtc/quality/quality.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  bench::BenchOptions defaults;
  defaults.ranks = 16;
  defaults.volume_n = 48;
  defaults.image_size = 128;
  const bench::BenchOptions o = bench::parse_options(argc, argv, defaults);
  bench::print_header("quality ladder: approximate & progressive rungs", o);
  const std::vector<img::Image> partials = bench::bench_partials(o);

  const auto run_rung = [&](quality::Rung rung, int max_error,
                            comm::ExecutorKind kind) {
    harness::CompositionConfig cfg;
    cfg.method = "bswap";
    cfg.gather = true;
    cfg.net = o.net;
    cfg.executor = o.executor;
    cfg.executor.kind = kind;
    cfg.quality.max_rung = rung;
    cfg.quality.max_error = max_error;
    cfg.quality_rung = rung;
    return harness::run_composition(cfg, partials);
  };

  const auto exact =
      run_rung(quality::Rung::kExact, 255, comm::ExecutorKind::kPooled);
  const auto approx =
      run_rung(quality::Rung::kApprox, 255, comm::ExecutorKind::kPooled);
  const auto prog = run_rung(quality::Rung::kProgressive, 255,
                             comm::ExecutorKind::kPooled);
  const auto gated =
      run_rung(quality::Rung::kApprox, 0, comm::ExecutorKind::kPooled);

  const auto same = [](const img::Image& a, const img::Image& b) {
    return a.width() == b.width() && a.height() == b.height() &&
           std::memcmp(a.pixels().data(), b.pixels().data(),
                       a.pixels().size_bytes()) == 0;
  };

  if (approx.time > exact.time) {
    std::cerr << "FAIL: approximate rung slower than exact in virtual "
                 "time\n";
    return 1;
  }
  if (approx.stats.max_pixel_error > approx.stats.error_bound ||
      img::max_channel_diff(exact.image, approx.image) >
          approx.stats.error_bound) {
    std::cerr << "FAIL: approximate rung broke its error bound\n";
    return 1;
  }
  if (!(prog.first_light > 0.0) || prog.first_light >= prog.time ||
      !prog.refined || !same(prog.image, exact.image)) {
    std::cerr << "FAIL: progressive rung must deliver first light early "
                 "and refine to the exact image\n";
    return 1;
  }
  if (gated.stats.quality_rung != 0 || !same(gated.image, exact.image) ||
      gated.time != exact.time) {
    std::cerr << "FAIL: --max-error 0 must stay byte-identical to "
                 "exact\n";
    return 1;
  }
  for (const quality::Rung rung :
       {quality::Rung::kApprox, quality::Rung::kProgressive}) {
    const auto a = run_rung(rung, 255, comm::ExecutorKind::kPooled);
    const auto b = run_rung(rung, 255, comm::ExecutorKind::kThreaded);
    if (a.time != b.time || !same(a.image, b.image)) {
      std::cerr << "FAIL: executors disagree on rung "
                << quality::rung_name(rung) << "\n";
      return 1;
    }
  }

  harness::Table t({"rung", "time [s]", "first light [s]", "bound",
                    "measured err", "skipped px"});
  t.add_row({"exact", harness::Table::num(exact.time, 4), "-", "0", "0",
             "0"});
  t.add_row({"approx", harness::Table::num(approx.time, 4), "-",
             std::to_string(approx.stats.error_bound),
             std::to_string(approx.stats.max_pixel_error),
             std::to_string(approx.stats.total_approx_skipped_pixels())});
  t.add_row({"progressive", harness::Table::num(prog.time, 4),
             harness::Table::num(prog.first_light, 4),
             std::to_string(prog.stats.error_bound),
             std::to_string(prog.stats.max_pixel_error), "0"});
  t.print(std::cout);
  std::cout << "\ncontract: measured error <= reported bound on every "
               "rung; max-error 0 is byte-identical to exact\n";

  if (!o.json_out.empty()) {
    bench::write_golden_json(
        o.json_out, "quality", o,
        {{"exact_s", exact.time},
         {"approx_s", approx.time},
         {"approx_bound", static_cast<double>(approx.stats.error_bound)},
         {"approx_err",
          static_cast<double>(approx.stats.max_pixel_error)},
         {"approx_skipped_px",
          static_cast<double>(approx.stats.total_approx_skipped_pixels())},
         {"progressive_s", prog.time},
         {"progressive_first_light_s", prog.first_light},
         {"progressive_bound",
          static_cast<double>(prog.stats.error_bound)},
         {"progressive_err",
          static_cast<double>(prog.stats.max_pixel_error)}});
  }
  return 0;
}
