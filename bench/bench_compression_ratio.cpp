// Figures 3/4 companion: compression ratios of RLE, TRLE and the
// bounding rectangle on real rendered partial images (per dataset),
// plus the Figure 4 style two-scanline example.
#include "bench_common.hpp"
#include "rtc/compress/codec.hpp"
#include "rtc/image/ops.hpp"
#include "rtc/image/serialize.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Figures 3/4: compression ratios", o);

  const auto rle = compress::make_rle_codec();
  const auto trle = compress::make_trle_codec();
  const auto bbox = compress::make_bbox_codec();
  std::vector<std::pair<std::string, double>> values;

  for (const char* dataset : {"engine", "brain", "head"}) {
    o.dataset = dataset;
    const std::vector<img::Image> partials = bench::bench_partials(o);
    std::int64_t raw = 0, rle_b = 0, trle_b = 0, bbox_b = 0,
                 non_blank = 0;
    for (const img::Image& im : partials) {
      const compress::BlockGeometry geom{im.width(), 0};
      raw += static_cast<std::int64_t>(
          img::serialize_pixels(im.pixels()).size());
      rle_b += static_cast<std::int64_t>(
          rle->encode(im.pixels(), geom).size());
      trle_b += static_cast<std::int64_t>(
          trle->encode(im.pixels(), geom).size());
      bbox_b += static_cast<std::int64_t>(
          bbox->encode(im.pixels(), geom).size());
      non_blank += img::count_non_blank(im.pixels());
    }
    const double blank_frac =
        1.0 - static_cast<double>(non_blank) /
                  (static_cast<double>(partials.size()) *
                   static_cast<double>(partials[0].pixel_count()));
    std::cout << "dataset " << dataset << "  (partial images "
              << harness::Table::num(100.0 * blank_frac, 1)
              << "% blank)\n";
    harness::Table t({"codec", "bytes", "ratio vs raw"});
    auto row = [&](const char* n, std::int64_t b) {
      values.emplace_back(std::string(dataset) + "/" + n + "_bytes",
                          static_cast<double>(b));
      t.add_row({n, std::to_string(b),
                 harness::Table::num(
                     static_cast<double>(raw) / static_cast<double>(b), 2)});
    };
    row("raw", raw);
    row("rle", rle_b);
    row("trle", trle_b);
    row("bbox", bbox_b);
    t.print(std::cout);
    std::cout << "\n";
  }

  // Figure 4 style example: 2 scanlines x 24 pixels, varied gray.
  img::Image ex(24, 2);
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 24; ++x)
      if (!((x >= 6 && x < 8) || (x >= 14 && x < 16)))
        ex.at(x, y) =
            img::GrayA8{static_cast<std::uint8_t>(40 + 8 * x + y), 255};
  const compress::BlockGeometry geom{24, 0};
  std::cout << "Figure 4 style example (2x24 gray scanlines):\n"
            << "  raw  = " << img::serialize_pixels(ex.pixels()).size()
            << " bytes\n"
            << "  RLE  = " << rle->encode(ex.pixels(), geom).size()
            << " bytes\n"
            << "  TRLE = " << trle->encode(ex.pixels(), geom).size()
            << " bytes   (paper's example ratio RLE:TRLE = 18:5)\n";
  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "compression_ratio", o, values);
  return 0;
}
