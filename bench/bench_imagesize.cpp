// Image-size sweep (extension): composition time vs raster size for
// the four paper methods at P=32. Startup terms are size-independent,
// transmission/compute scale with A — so the method ranking tightens
// as images grow and the optimal block count drifts upward (Eq. (5)'s
// A-dependence).
#include "bench_common.hpp"
#include "rtc/costmodel/table1.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Image-size sweep", o);

  harness::Table t({"image", "bswap [s]", "pp [s]", "rt_2n(4) [s]",
                    "rt best-N [s]", "best N", "Eq5 bound"});
  std::vector<std::pair<std::string, double>> values;
  for (const int size : {128, 256, 512, 1024}) {
    bench::BenchOptions so = o;
    so.image_size = size;
    const std::vector<img::Image> partials = bench::bench_partials(so);
    auto timed = [&](const std::string& m, int blocks) {
      harness::CompositionConfig cfg;
      cfg.method = m;
      cfg.initial_blocks = blocks;
      cfg.net = o.net;
      return harness::run_composition(cfg, partials).time;
    };
    double best = 1e300;
    int best_n = 1;
    for (int n = 1; n <= 12; ++n) {
      const double v = timed("rt", n);
      if (v < best) {
        best = v;
        best_n = n;
      }
    }
    const std::string px = std::to_string(size);
    values.emplace_back(px + "/bswap_s", timed("bswap", 1));
    values.emplace_back(px + "/pp_s", timed("pp", so.ranks));
    values.emplace_back(px + "/rt_2n4_s", timed("rt_2n", 4));
    values.emplace_back(px + "/rt_best_s", best);
    values.emplace_back(px + "/rt_best_n", static_cast<double>(best_n));
    t.add_row(
        {px + "^2",
         harness::Table::num(timed("bswap", 1), 4),
         harness::Table::num(timed("pp", so.ranks), 4),
         harness::Table::num(timed("rt_2n", 4), 4),
         harness::Table::num(best, 4), std::to_string(best_n),
         harness::Table::num(
             costmodel::eq5_bound(2.0 * size * size, o.net, o.ranks), 2)});
  }
  t.print(std::cout);
  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "imagesize", o, values);
  return 0;
}
