// Gather-stage cost (the paper's composition times exclude it; this
// quantifies what that exclusion hides). Every method leaves the final
// image distributed differently — direct-send already has it at the
// root, PP spreads P blocks, RT spreads N*2^(S-1) — but the gathered
// byte volume is one full image minus the root's share either way, so
// the stage costs roughly the same for all distributed methods.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rtc;
  const bench::BenchOptions o = bench::parse_options(argc, argv);
  bench::print_header("Gather stage cost", o);
  const std::vector<img::Image> partials = bench::bench_partials(o);

  harness::Table t({"method", "composite only [s]", "with gather [s]",
                    "gather cost [s]"});
  std::vector<std::pair<std::string, double>> values;
  struct Row {
    const char* method;
    int blocks;
  };
  for (const Row r : {Row{"bswap", 1}, Row{"pp", 0}, Row{"rt_2n", 4},
                      Row{"rt_n", 3}, Row{"radix", 4},
                      Row{"direct", 1}}) {
    harness::CompositionConfig cfg;
    cfg.method = r.method;
    cfg.initial_blocks = r.blocks == 0 ? o.ranks : r.blocks;
    cfg.net = o.net;
    const double bare = harness::run_composition(cfg, partials).time;
    cfg.gather = true;
    const double full = harness::run_composition(cfg, partials).time;
    t.add_row({r.method, harness::Table::num(bare, 4),
               harness::Table::num(full, 4),
               harness::Table::num(full - bare, 4)});
    values.emplace_back(std::string(r.method) + "/composite_s", bare);
    values.emplace_back(std::string(r.method) + "/gathered_s", full);
  }
  t.print(std::cout);
  if (!o.json_out.empty())
    bench::write_golden_json(o.json_out, "gather", o, values);
  return 0;
}
