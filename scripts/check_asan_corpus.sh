#!/usr/bin/env bash
# Runs the malformed-input corpus (tests/compress/fuzz_corpus_test.cpp)
# under AddressSanitizer + UBSan. The corpus mutates valid codec
# streams, frames, and gather payloads; the contract is that every
# deserializer either succeeds or throws a typed wire::DecodeError —
# under ASan this additionally proves no mutant induces an
# out-of-bounds read/write while doing so.
#
# Usage: scripts/check_asan_corpus.sh
# $BUILD_DIR overrides the build-directory prefix (default: build);
# the corpus builds into "${BUILD_DIR}-address".
set -euo pipefail
cd "$(dirname "$0")/.."

DIR="${BUILD_DIR:-build}-address"
echo "== malformed-input corpus under RTC_SANITIZE=address =="
cmake -B "$DIR" -S . -DRTC_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$DIR" -j --target fuzz_corpus_test
(cd "$DIR" && ctest --output-on-failure -R fuzz_corpus_test)
echo "asan corpus check passed"
