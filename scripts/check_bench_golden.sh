#!/usr/bin/env bash
# Bit-exact virtual-time perf regression gate.
#
# Virtual time in this repo depends only on the message DAG and the
# NetworkModel charges — never on wall-clock scheduling — so the bench
# numbers are not statistics but exact model outputs. This gate runs
# the gated benches with --json (17 significant digits) and byte-
# compares the output against the checked-in goldens in bench/golden/.
# ANY drift — a reordered send, a changed charge, a perturbed Ts — is a
# hard failure, not noise.
#
# Usage: scripts/check_bench_golden.sh [build-dir]
#        (default: $BUILD_DIR, then build)
# To regenerate after an *intentional* cost-model change:
#        scripts/check_bench_golden.sh --update [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
  shift
fi
BUILD="${1:-${BUILD_DIR:-build}}"
GOLDEN=bench/golden
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
fail=0

check_bench() {  # check_bench <bench-binary> <golden-file>
  local bench="$1" golden="$GOLDEN/$2"
  echo "== $bench -> $2 =="
  # timeout matches CI's per-test ctest --timeout; the P=1024 scaling
  # trajectory is the long pole and finishes well inside it.
  timeout 300 "$BUILD/bench/$bench" --json "$TMP/$2" >/dev/null
  if [ "$UPDATE" -eq 1 ]; then
    cp "$TMP/$2" "$golden"
    echo "updated $golden"
    return
  fi
  if cmp -s "$TMP/$2" "$golden"; then
    echo "ok   $2 is bit-identical"
  else
    echo "FAIL $2 drifted from golden:"
    diff "$golden" "$TMP/$2" || true
    fail=1
  fi
}

check_bench bench_table1_model table1_engine_p32.json
check_bench bench_fig6_methods fig6_engine_p32.json
check_bench bench_frame_pipeline frame_pipeline_engine_p16.json
# The large-P trajectory (P up to 1024 on the pooled executor): pins
# direct/bswap_any/rt/hier virtual times at scale.
check_bench bench_scaling scaling_p1024.json
# Render-service front end: 8 sessions of open-loop traffic over a
# P=32 world — pins the admission/batching/latency numbers.
check_bench bench_service service_p32.json
# Quality ladder: pins the exact/approx/progressive virtual times, the
# a-priori error bounds and the measured errors at P=16.
check_bench bench_quality quality_p16.json

if [ "$fail" -ne 0 ]; then
  echo "virtual-time golden check FAILED — a cost charge or message"
  echo "schedule changed. If intentional, regenerate with:"
  echo "  scripts/check_bench_golden.sh --update $BUILD"
  exit 1
fi
[ "$UPDATE" -eq 1 ] || echo "all virtual-time goldens are bit-identical"
