#!/usr/bin/env bash
# Chaos seed-sweep over the fault-injection matrix: methods x policies
# x seeds, each run twice to prove determinism byte-for-byte.
# Usage: scripts/check_chaos.sh [build-dir]   (default: $BUILD_DIR,
# then build)
#
# Invariants checked on every cell:
#   * the CLI exits 0 — faults degrade results, never crash the run;
#   * replaying the identical plan reproduces the image byte-for-byte
#     and the fault summary line verbatim;
#   * crash-only plans under --on-peer-loss=recompose finish with
#     lost_px=0 (the survivors recomposed; nothing stayed blanked);
#   * a dead link with the circuit breaker + relay enabled produces
#     the exact no-fault image (lost_px=0, no degradation);
#   * the quality-degradation ladder (docs/quality.md) stays inside its
#     error contract under faults, and --degrade-before-shed turns an
#     overloaded service's sheds into quality class steps — zero drops,
#     byte-identical across replays.
set -euo pipefail
BUILD="${1:-${BUILD_DIR:-build}}"
RTCOMP="$BUILD/tools/rtcomp"
[[ -x $RTCOMP ]] || { echo "error: $RTCOMP not built" >&2; exit 1; }
# Per-invocation timeout, matching CI's ctest --timeout: a chaos cell
# that deadlocks must fail the sweep, not hang it.
RT=(timeout 120 "$RTCOMP")

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail=0

BASE=(render --dataset engine --ranks 4 --image 64 --volume 32
      --codec trle --retries 6)

blocks_for() {  # rt variants want multiple blocks per rank
  case "$1" in rt_n|rt) echo 3 ;; *) echo 1 ;; esac
}

run_cell() {  # run_cell <label> <expect-grep> <arg...>
  local label="$1" expect="$2"; shift 2
  local out1="$TMP/a.pgm" out2="$TMP/b.pgm"
  local sum1 sum2
  if ! sum1=$("${RT[@]}" "${BASE[@]}" "$@" --out "$out1" 2>&1); then
    echo "FAIL $label  (nonzero exit)"; echo "$sum1" | sed 's/^/     /'
    fail=1; return
  fi
  sum2=$("${RT[@]}" "${BASE[@]}" "$@" --out "$out2" 2>&1)
  if ! cmp -s "$out1" "$out2"; then
    echo "FAIL $label  (image not deterministic across replays)"
    fail=1; return
  fi
  # Quote the RHS: an unquoted substitution in [[ != ]] is a glob
  # pattern, and the summary contains glob-active brackets (dead=[3]).
  if [[ $(grep '^faults:' <<<"$sum1") != "$(grep '^faults:' <<<"$sum2")" ]]
  then
    echo "FAIL $label  (fault summary not deterministic)"
    fail=1; return
  fi
  if [[ -n $expect ]] && ! grep -qE "$expect" <<<"$sum1"; then
    echo "FAIL $label  (wanted /$expect/)"
    echo "$sum1" | sed 's/^/     /'
    fail=1; return
  fi
  echo "ok   $label"
}

# --- Wire-fault storm sweep: drops+corruption+dups, both policies ----
for seed in 7 101 909; do
  for method in rt_n bswap_any direct pp_exact; do
    for policy in blank recompose; do
      run_cell "storm seed=$seed $method/$policy" 'faults:' \
        --method "$method" --blocks "$(blocks_for "$method")" \
        --fault-seed "$seed" --fault-drop 0.3 --fault-corrupt 0.1 \
        --fault-dup 0.1 --on-peer-loss "$policy"
    done
  done
done

# --- Crash-only plans: recompose must converge to lost_px=0 ----------
for seed in 7 101 909; do
  for method in rt_n bswap_any direct pp_exact; do
    run_cell "crash seed=$seed $method/recompose" \
      'lost_px=0 dead=\[3\] epoch=1 recomposed=' \
      --method "$method" --blocks "$(blocks_for "$method")" \
      --fault-seed "$seed" --fault-crash-rank 3 --fault-crash-after 0 \
      --on-peer-loss recompose
  done
done

# Crash mid-storm: recovery still terminates and stays deterministic.
run_cell "crash+storm rt_n/recompose" 'dead=\[3\] epoch=1' \
  --method rt_n --blocks 3 --fault-seed 13 --fault-drop 0.2 \
  --fault-crash-rank 3 --fault-crash-after 1 --on-peer-loss recompose

# --- Fail-slow sweep: stragglers hedge, deadlines bound frames -------
# Chronic jitter on a ring link: the straggler detector flags it from
# the sender's own delivery observations and hedges later sends through
# a relay. Jitter delays but never corrupts, and the hedge carries
# identical bytes — the image must equal the no-fault one exactly.
"${RT[@]}" "${BASE[@]}" --method rt_n --blocks 3 --out "$TMP/ref.pgm" \
  >/dev/null
run_cell "straggler rt_n/hedge" \
  'stragglers=[1-9].*hedged=[1-9].*wins=[1-9].* ok' \
  --method rt_n --blocks 3 --fault-jitter 1:0:0.05 \
  --straggler-multiple 3 --straggler-window 1 --hedge
if ! cmp -s "$TMP/ref.pgm" "$TMP/a.pgm"; then
  echo "FAIL straggler rt_n/hedge  (hedged image != no-fault image)"
  fail=1
else
  echo "ok   straggler hedged image matches no-fault image"
fi

# An 8x-slow rank under a deliberately hopeless single-shot deadline:
# there is no prior frame to substitute from, so late blocks degrade to
# bounded losses — deterministically, with exit 0.
run_cell "slow+deadline bswap_any/blank" \
  'lost_px=[1-9].*deadline_miss=[1-9].*degraded' \
  --method bswap_any --blocks 1 --fault-slow 1:8 --deadline 0.0001 \
  --on-peer-loss blank

run_frames_cell() {  # run_frames_cell <label> <expect-grep> <arg...>
  local label="$1" expect="$2"; shift 2
  local s1="$TMP/a.pgms" s2="$TMP/b.pgms"
  local out1 out2
  if ! out1=$("${RT[@]}" "${BASE[@]}" "$@" --stream "$s1" 2>&1); then
    echo "FAIL $label  (nonzero exit)"; echo "$out1" | sed 's/^/     /'
    fail=1; return
  fi
  out2=$("${RT[@]}" "${BASE[@]}" "$@" --stream "$s2" 2>&1)
  if ! cmp -s "$s1" "$s2"; then
    echo "FAIL $label  (frame stream not deterministic across replays)"
    fail=1; return
  fi
  if [[ $(grep '^deadline:' <<<"$out1") != \
        "$(grep '^deadline:' <<<"$out2")" ]]; then
    echo "FAIL $label  (deadline accounting not deterministic)"
    fail=1; return
  fi
  if [[ -n $expect ]] && ! grep -qE "$expect" <<<"$out1"; then
    echo "FAIL $label  (wanted /$expect/)"
    echo "$out1" | sed 's/^/     /'
    fail=1; return
  fi
  echo "ok   $label"
}

# Chronic slowdown across a camera sweep: every frame misses the
# deadline, frames 1+ substitute last frame's tiles instead of losing
# pixels, and the whole delivered stream replays byte-identically.
for method in bswap rt_n; do
  run_frames_cell "sweep slow+deadline $method" \
    'deadline: [1-9][0-9]* miss\(es\), [1-9][0-9]* stale tile' \
    --method "$method" --blocks "$(blocks_for "$method")" --frames 4 \
    --max-in-flight 2 --fault-slow 1:8 --deadline 0.012 \
    --on-peer-loss blank
done

# --- Multi-session blast radius: a crash degrades only the sessions -—
# on the crash submission. The service runs seeded traffic with
# coalescing off (--quant 0), so every submission has exactly one lead
# session; crashing a rank at --fault-submission K under recompose must
# degrade that submission's session and no other — and the whole run
# (per-session table included) must replay byte-identically.
run_service_cell() {  # run_service_cell <label> <seed> <crash-submission>
  local label="$1" seed="$2" sub="$3"
  local out1 out2
  local args=(render --service --dataset engine --ranks 8 --image 64
              --volume 32 --method rt_n --blocks 3 --codec trle
              --sessions 4 --requests 4 --arrival-rate 100 --quant 0
              --traffic-seed "$seed" --fault-crash-rank 1
              --fault-submission "$sub" --on-peer-loss recompose)
  if ! out1=$("${RT[@]}" "${args[@]}" 2>&1); then
    echo "FAIL $label  (nonzero exit)"; echo "$out1" | sed 's/^/     /'
    fail=1; return
  fi
  out2=$("${RT[@]}" "${args[@]}" 2>&1)
  if [[ "$out1" != "$out2" ]]; then
    echo "FAIL $label  (service run not deterministic across replays)"
    diff <(echo "$out1") <(echo "$out2") || true
    fail=1; return
  fi
  local degraded
  degraded=$(sed -n 's/^degraded: session(s) //p' <<<"$out1")
  if [[ ! $degraded =~ ^[0-9]+$ ]]; then
    echo "FAIL $label  (expected exactly one degraded session, got" \
         "'${degraded:-none}')"
    echo "$out1" | sed 's/^/     /'; fail=1; return
  fi
  # The per-session table must agree: degr=1 for that session, 0 for
  # every other (column 9 of the table rows).
  local bad
  bad=$(awk -v hit="$degraded" '/^ +[0-9]+ +[0-9]+ /{
          want = ($1 == hit) ? 1 : 0
          if ($9 != want) print $1 }' <<<"$out1")
  if [[ -n $bad ]]; then
    echo "FAIL $label  (degr column disagrees with blast radius:" \
         "session(s) $bad)"
    echo "$out1" | sed 's/^/     /'; fail=1; return
  fi
  if ! grep -q 'lost_px=0' <<<"$out1"; then
    echo "FAIL $label  (recompose left lost pixels)"
    echo "$out1" | sed 's/^/     /'; fail=1; return
  fi
  echo "ok   $label (blast radius = session $degraded only)"
}

for seed in 1 7; do
  for sub in 2 5; do
    run_service_cell "service crash seed=$seed sub=$sub" "$seed" "$sub"
  done
done

# --- Quality ladder under chaos (docs/quality.md) --------------------
# Approximate rung inside a wire-fault storm: the fault summary must
# carry the quality tokens, the measured error must stay inside the
# a-priori bound it reports (46 at the default saturation — --max-error
# pins the contract), and the run must replay byte-identically.
run_cell "quality approx storm rt_n/recompose" \
  'quality=approx bound=46 err=([0-9]|[1-3][0-9]|4[0-6]) ' \
  --method rt_n --blocks 3 --fault-seed 7 --fault-drop 0.3 \
  --on-peer-loss recompose --quality approx --max-error 46

# Progressive rung across a deadline-pressured sweep: the controller
# steps frames down once deadline misses appear, the sweep reports the
# floor it hit, and the delivered stream replays byte-identically.
run_frames_cell "quality progressive sweep bswap" \
  'quality: [1-9] frame\(s\) below exact, floor progressive' \
  --method bswap --blocks 1 --frames 4 --max-in-flight 2 \
  --fault-slow 1:8 --deadline 0.012 --on-peer-loss blank \
  --quality progressive --progressive 4

# --- Overload: degrade-before-shed trades quality for zero sheds -----
# The same overload plan that sheds requests at baseline must, with the
# ladder engaged, deliver every request by stepping session quality
# classes down instead — and the whole run (per-session table and
# quality summary included) must replay byte-identically.
run_overload_cell() {  # run_overload_cell <label> <seed>
  local label="$1" seed="$2"
  local base=(render --service --dataset engine --ranks 2 --image 32
              --volume 16 --method bswap --sessions 2 --requests 10
              --arrival-rate 5000 --queue-cap 2 --quant 0
              --admission shed-oldest --traffic-seed "$seed")
  local ref out1 out2
  if ! ref=$("${RT[@]}" "${base[@]}" 2>&1); then
    echo "FAIL $label  (baseline nonzero exit)"
    echo "$ref" | sed 's/^/     /'; fail=1; return
  fi
  if ! grep -qE '\([1-9][0-9]* shed,' <<<"$ref"; then
    echo "FAIL $label  (baseline plan never sheds; cell proves nothing)"
    echo "$ref" | sed 's/^/     /'; fail=1; return
  fi
  if ! out1=$("${RT[@]}" "${base[@]}" --quality stale \
              --degrade-before-shed 2>&1); then
    echo "FAIL $label  (nonzero exit)"; echo "$out1" | sed 's/^/     /'
    fail=1; return
  fi
  out2=$("${RT[@]}" "${base[@]}" --quality stale --degrade-before-shed \
         2>&1)
  if [[ "$out1" != "$out2" ]]; then
    echo "FAIL $label  (degraded service run not deterministic)"
    diff <(echo "$out1") <(echo "$out2") || true; fail=1; return
  fi
  if ! grep -q '0 dropped (0 shed, 0 rejected, 0 expired)' <<<"$out1"
  then
    echo "FAIL $label  (ladder engaged but requests still dropped)"
    echo "$out1" | sed 's/^/     /'; fail=1; return
  fi
  if ! grep -qE '^quality: [1-9][0-9]* class step\(s\)' <<<"$out1"; then
    echo "FAIL $label  (zero sheds but no quality class steps reported)"
    echo "$out1" | sed 's/^/     /'; fail=1; return
  fi
  echo "ok   $label (sheds became class steps, zero drops)"
}

for seed in 3 11; do
  run_overload_cell "overload degrade-before-shed seed=$seed" "$seed"
done

# --- Circuit breaker: dead link relays to the exact no-fault image ---
"${RT[@]}" "${BASE[@]}" --method direct --blocks 1 \
  --out "$TMP/ref.pgm" >/dev/null
run_cell "dead link direct/relay" \
  'lost_px=0 dead=\[\] relayed=[1-9].* trips=[1-9].* ok' \
  --method direct --blocks 1 --fault-link 1:0:1.0 \
  --circuit-breaker-threshold 2 --relay
if ! cmp -s "$TMP/ref.pgm" "$TMP/a.pgm"; then
  echo "FAIL dead link direct/relay  (relayed image != no-fault image)"
  fail=1
else
  echo "ok   dead link relayed image matches no-fault image"
fi

if [[ $fail -ne 0 ]]; then echo "chaos sweep FAILED"; exit 1; fi
echo "chaos sweep passed"
