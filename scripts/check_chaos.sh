#!/usr/bin/env bash
# Chaos seed-sweep over the fault-injection matrix: methods x policies
# x seeds, each run twice to prove determinism byte-for-byte.
# Usage: scripts/check_chaos.sh [build-dir]   (default: $BUILD_DIR,
# then build)
#
# Invariants checked on every cell:
#   * the CLI exits 0 — faults degrade results, never crash the run;
#   * replaying the identical plan reproduces the image byte-for-byte
#     and the fault summary line verbatim;
#   * crash-only plans under --on-peer-loss=recompose finish with
#     lost_px=0 (the survivors recomposed; nothing stayed blanked);
#   * a dead link with the circuit breaker + relay enabled produces
#     the exact no-fault image (lost_px=0, no degradation).
set -euo pipefail
BUILD="${1:-${BUILD_DIR:-build}}"
RTCOMP="$BUILD/tools/rtcomp"
[[ -x $RTCOMP ]] || { echo "error: $RTCOMP not built" >&2; exit 1; }

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail=0

BASE=(render --dataset engine --ranks 4 --image 64 --volume 32
      --codec trle --retries 6)

blocks_for() {  # rt variants want multiple blocks per rank
  case "$1" in rt_n|rt) echo 3 ;; *) echo 1 ;; esac
}

run_cell() {  # run_cell <label> <expect-grep> <arg...>
  local label="$1" expect="$2"; shift 2
  local out1="$TMP/a.pgm" out2="$TMP/b.pgm"
  local sum1 sum2
  if ! sum1=$("$RTCOMP" "${BASE[@]}" "$@" --out "$out1" 2>&1); then
    echo "FAIL $label  (nonzero exit)"; echo "$sum1" | sed 's/^/     /'
    fail=1; return
  fi
  sum2=$("$RTCOMP" "${BASE[@]}" "$@" --out "$out2" 2>&1)
  if ! cmp -s "$out1" "$out2"; then
    echo "FAIL $label  (image not deterministic across replays)"
    fail=1; return
  fi
  # Quote the RHS: an unquoted substitution in [[ != ]] is a glob
  # pattern, and the summary contains glob-active brackets (dead=[3]).
  if [[ $(grep '^faults:' <<<"$sum1") != "$(grep '^faults:' <<<"$sum2")" ]]
  then
    echo "FAIL $label  (fault summary not deterministic)"
    fail=1; return
  fi
  if [[ -n $expect ]] && ! grep -qE "$expect" <<<"$sum1"; then
    echo "FAIL $label  (wanted /$expect/)"
    echo "$sum1" | sed 's/^/     /'
    fail=1; return
  fi
  echo "ok   $label"
}

# --- Wire-fault storm sweep: drops+corruption+dups, both policies ----
for seed in 7 101 909; do
  for method in rt_n bswap_any direct pp_exact; do
    for policy in blank recompose; do
      run_cell "storm seed=$seed $method/$policy" 'faults:' \
        --method "$method" --blocks "$(blocks_for "$method")" \
        --fault-seed "$seed" --fault-drop 0.3 --fault-corrupt 0.1 \
        --fault-dup 0.1 --on-peer-loss "$policy"
    done
  done
done

# --- Crash-only plans: recompose must converge to lost_px=0 ----------
for seed in 7 101 909; do
  for method in rt_n bswap_any direct pp_exact; do
    run_cell "crash seed=$seed $method/recompose" \
      'lost_px=0 dead=\[3\] epoch=1 recomposed=' \
      --method "$method" --blocks "$(blocks_for "$method")" \
      --fault-seed "$seed" --fault-crash-rank 3 --fault-crash-after 0 \
      --on-peer-loss recompose
  done
done

# Crash mid-storm: recovery still terminates and stays deterministic.
run_cell "crash+storm rt_n/recompose" 'dead=\[3\] epoch=1' \
  --method rt_n --blocks 3 --fault-seed 13 --fault-drop 0.2 \
  --fault-crash-rank 3 --fault-crash-after 1 --on-peer-loss recompose

# --- Circuit breaker: dead link relays to the exact no-fault image ---
"$RTCOMP" "${BASE[@]}" --method direct --blocks 1 \
  --out "$TMP/ref.pgm" >/dev/null
run_cell "dead link direct/relay" \
  'lost_px=0 dead=\[\] relayed=[1-9].* trips=[1-9].* ok' \
  --method direct --blocks 1 --fault-link 1:0:1.0 \
  --circuit-breaker-threshold 2 --relay
if ! cmp -s "$TMP/ref.pgm" "$TMP/a.pgm"; then
  echo "FAIL dead link direct/relay  (relayed image != no-fault image)"
  fail=1
else
  echo "ok   dead link relayed image matches no-fault image"
fi

if [[ $fail -ne 0 ]]; then echo "chaos sweep FAILED"; exit 1; fi
echo "chaos sweep passed"
