#!/usr/bin/env bash
# Render-service gate: seeded synthetic traffic over the frame
# pipeline, in exact virtual time.
# Usage: scripts/check_service.sh [build-dir]   (default: $BUILD_DIR,
# then build)
#
# Invariants checked:
#   * P=32 soak: an overloaded 8-session run exits 0 on every seed in
#     the sweep, replays byte-identically (full stdout, including the
#     per-session table and the latency distribution), and is
#     byte-identical across the pooled and threaded executors;
#   * conservation on every cell: arrivals == delivered + dropped,
#     parsed from the load: line;
#   * P=1024 smoke: one thousand-rank submission stream on the pooled
#     executor finishes inside the timeout — sessions are a front end,
#     not a scalability regression;
#   * zero-shed identity: with an uncontended queue the service layer
#     admits everything (0 dropped) — admission is pay-for-use.
set -euo pipefail
BUILD="${1:-${BUILD_DIR:-build}}"
RTCOMP="$BUILD/tools/rtcomp"
[[ -x $RTCOMP ]] || { echo "error: $RTCOMP not built" >&2; exit 1; }
RT=(timeout 300 "$RTCOMP")

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail=0

# Overloaded P=32 operating point: arrivals outrun the pipeline, so
# admission control and the batcher both do real work on every seed.
SOAK=(render --service --dataset engine --ranks 32 --image 128
      --volume 48 --method rt_n --blocks 3 --codec trle
      --sessions 8 --requests 6 --arrival-rate 200 --queue-cap 2
      --admission shed-oldest --max-in-flight 2)

check_load_conservation() {  # <label> <stdout>
  local label="$1" out="$2" arrived delivered dropped
  arrived=$(sed -n 's/^load: \([0-9]*\) arrivals.*/\1/p' <<<"$out")
  delivered=$(sed -n 's/^load: .* \([0-9]*\) delivered.*/\1/p' <<<"$out")
  dropped=$(sed -n 's/^load: .* \([0-9]*\) dropped.*/\1/p' <<<"$out")
  if [[ -z $arrived || -z $delivered || -z $dropped ]]; then
    echo "FAIL $label  (could not parse load: line)"
    echo "$out" | sed 's/^/     /'; fail=1; return 1
  fi
  if (( arrived != delivered + dropped )); then
    echo "FAIL $label  (conservation: $arrived != $delivered + $dropped)"
    fail=1; return 1
  fi
}

# --- P=32 soak: seed sweep, determinism, executor byte-identity ------
for seed in 1 42 909; do
  label="soak P=32 seed=$seed"
  if ! "${RT[@]}" "${SOAK[@]}" --traffic-seed "$seed" \
      --executor pooled > "$TMP/pooled.txt" 2>&1; then
    echo "FAIL $label  (nonzero exit)"
    sed 's/^/     /' "$TMP/pooled.txt"; fail=1; continue
  fi
  "${RT[@]}" "${SOAK[@]}" --traffic-seed "$seed" \
    --executor pooled > "$TMP/pooled2.txt" 2>&1
  if ! cmp -s "$TMP/pooled.txt" "$TMP/pooled2.txt"; then
    echo "FAIL $label  (replay not byte-identical)"
    diff "$TMP/pooled.txt" "$TMP/pooled2.txt" || true
    fail=1; continue
  fi
  "${RT[@]}" "${SOAK[@]}" --traffic-seed "$seed" \
    --executor threaded > "$TMP/threaded.txt" 2>&1
  if ! cmp -s "$TMP/pooled.txt" "$TMP/threaded.txt"; then
    echo "FAIL $label  (pooled and threaded executors disagree)"
    diff "$TMP/pooled.txt" "$TMP/threaded.txt" || true
    fail=1; continue
  fi
  check_load_conservation "$label" "$(cat "$TMP/pooled.txt")" || continue
  if ! grep -q 'shed-oldest @ cap 2' "$TMP/pooled.txt" ||
     ! grep -qE 'dropped \([1-9][0-9]* shed' "$TMP/pooled.txt"; then
    echo "FAIL $label  (overload never engaged admission control)"
    sed 's/^/     /' "$TMP/pooled.txt"; fail=1; continue
  fi
  echo "ok   $label"
done

# Distinct seeds must produce distinct traffic (the sweep is not
# accidentally re-running one seed three times).
if cmp -s "$TMP/pooled.txt" "$TMP/pooled2.txt" 2>/dev/null; then
  "${RT[@]}" "${SOAK[@]}" --traffic-seed 1 --executor pooled \
    > "$TMP/s1.txt" 2>&1
  "${RT[@]}" "${SOAK[@]}" --traffic-seed 42 --executor pooled \
    > "$TMP/s42.txt" 2>&1
  if cmp -s "$TMP/s1.txt" "$TMP/s42.txt"; then
    echo "FAIL seed sensitivity  (seeds 1 and 42 gave identical runs)"
    fail=1
  else
    echo "ok   seed sensitivity (seeds 1 and 42 differ)"
  fi
fi

# --- Zero-shed identity: uncontended queue admits everything ---------
out=$("${RT[@]}" "${SOAK[@]}" --traffic-seed 1 --queue-cap 64 \
  --arrival-rate 20 --executor pooled 2>&1) || {
  echo "FAIL zero-shed  (nonzero exit)"; fail=1; }
if ! grep -q ' 0 dropped (0 shed, 0 rejected, 0 expired)' <<<"$out"; then
  echo "FAIL zero-shed  (uncontended run still dropped requests)"
  echo "$out" | sed 's/^/     /'; fail=1
else
  echo "ok   zero-shed (uncontended run admitted everything)"
fi

# --- P=1024 pooled smoke: the front end rides the scaled pipeline ----
# The renderer needs volume_n >= ranks (one slab slice per rank), so
# this is a real 1024^3 render — the long pole is the renderer, not the
# service. Two single-request sessions keep it to two submissions.
label="smoke P=1024 pooled"
if out=$(timeout 600 "$RTCOMP" render --service --dataset engine \
    --ranks 1024 --image 32 --volume 1024 --method hier --blocks 1 \
    --codec trle --group-size 32 --sessions 2 --requests 1 \
    --arrival-rate 50 --executor pooled 2>&1); then
  check_load_conservation "$label" "$out" && echo "ok   $label"
else
  echo "FAIL $label  (nonzero exit)"
  echo "$out" | sed 's/^/     /'; fail=1
fi

if [[ $fail -ne 0 ]]; then echo "service gate FAILED"; exit 1; fi
echo "service gate passed"
