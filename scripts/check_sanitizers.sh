#!/usr/bin/env bash
# Builds the comm substrate and the chaos suite under ThreadSanitizer
# (and optionally AddressSanitizer / UndefinedBehaviorSanitizer) and
# runs the concurrency-sensitive tests. The World runs one real thread
# per rank, so TSan is the authoritative race check for the
# mailbox/death/barrier paths — including the fault-injection ones
# that crash ranks mid-run. The address and undefined modes also cover
# the SIMD kernel/codec suites: vector loads with scalar tails are
# exactly where an off-by-one reads past a span. The quality-ladder
# suite runs in every mode: the approximate blend's skip loop and the
# progressive down/upsample resamplers index pixel spans directly.
#
# Usage: scripts/check_sanitizers.sh [thread|address|undefined|all]
# (default: all). $BUILD_DIR overrides the build-directory prefix
# (default: build), so CI can keep per-job caches apart: the mode
# builds into "${BUILD_DIR}-thread" / "${BUILD_DIR}-address" /
# "${BUILD_DIR}-undefined".
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
THREAD_TESTS="world_test|frame_test|chaos_test|wire_test|methods_test|fuzz_corpus_test|membership_test|recompose_test|breaker_test|executor_test|hierarchical_test|quality_test"
MEMORY_TESTS="$THREAD_TESTS|simd_kernels_test|simd_dispatch_test|ops_test|codec_test|trle_test"
MEMORY_TARGETS="simd_kernels_test simd_dispatch_test ops_test codec_test trle_test"

run_mode() {
  local san="$1"
  local tests="$2"
  local extra_targets="$3"
  local dir="${BUILD_DIR:-build}-$san"
  echo "== RTC_SANITIZE=$san =="
  cmake -B "$dir" -S . -DRTC_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  # shellcheck disable=SC2086  # extra_targets is a word list
  cmake --build "$dir" -j --target \
        world_test frame_test chaos_test wire_test methods_test \
        fuzz_corpus_test membership_test recompose_test breaker_test \
        executor_test hierarchical_test quality_test $extra_targets
  # Same per-test timeout CI uses: a sanitizer-found deadlock should
  # fail the run, not hang it.
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)" --timeout 120 \
       -R "$tests")
}

case "$MODE" in
  thread)    run_mode thread "$THREAD_TESTS" "" ;;
  address)   run_mode address "$MEMORY_TESTS" "$MEMORY_TARGETS" ;;
  undefined) run_mode undefined "$MEMORY_TESTS" "$MEMORY_TARGETS" ;;
  all)
    run_mode thread "$THREAD_TESTS" ""
    run_mode address "$MEMORY_TESTS" "$MEMORY_TARGETS"
    run_mode undefined "$MEMORY_TESTS" "$MEMORY_TARGETS"
    ;;
  *) echo "usage: $0 [thread|address|undefined|all]" >&2; exit 2 ;;
esac
echo "sanitizer checks passed"
