#!/usr/bin/env bash
# Builds the comm substrate and the chaos suite under ThreadSanitizer
# (and optionally AddressSanitizer+UBSan) and runs the concurrency-
# sensitive tests. The World runs one real thread per rank, so TSan is
# the authoritative race check for the mailbox/death/barrier paths —
# including the fault-injection ones that crash ranks mid-run.
#
# Usage: scripts/check_sanitizers.sh [thread|address|all]   (default: all)
# $BUILD_DIR overrides the build-directory prefix (default: build), so
# CI can keep per-job caches apart: the mode builds into
# "${BUILD_DIR}-thread" / "${BUILD_DIR}-address".
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
TESTS="world_test|frame_test|chaos_test|wire_test|methods_test|fuzz_corpus_test|membership_test|recompose_test|breaker_test|executor_test|hierarchical_test"

run_mode() {
  local san="$1"
  local dir="${BUILD_DIR:-build}-$san"
  echo "== RTC_SANITIZE=$san =="
  cmake -B "$dir" -S . -DRTC_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$dir" -j --target \
        world_test frame_test chaos_test wire_test methods_test \
        fuzz_corpus_test membership_test recompose_test breaker_test \
        executor_test hierarchical_test
  # Same per-test timeout CI uses: a sanitizer-found deadlock should
  # fail the run, not hang it.
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)" --timeout 120 \
       -R "$TESTS")
}

case "$MODE" in
  thread)  run_mode thread ;;
  address) run_mode address ;;
  all)     run_mode thread; run_mode address ;;
  *) echo "usage: $0 [thread|address|all]" >&2; exit 2 ;;
esac
echo "sanitizer checks passed"
