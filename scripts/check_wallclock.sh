#!/usr/bin/env bash
# Wall-clock kernel-throughput floor gate.
#
# Unlike the virtual-time goldens (check_bench_golden.sh), wall-clock
# numbers ARE statistics: they move with the machine, the load, and
# the compiler. So this gate does not bit-compare — it runs
# `bench_micro --wallclock --json` and checks two robust properties
# against the pinned floor file bench/golden/wallclock_floor.json:
#
#   1. absolute floors: each kernel/level stays above a generous
#      fraction (the --update default records measured * 0.25) of the
#      throughput measured when the floor was pinned — catching
#      "kernel silently fell off the fast path" regressions while
#      shrugging off CI noise;
#   2. relative speedups: on hardware that supports them, the SIMD
#      levels of the gated kernels must beat scalar by min_speedup —
#      the property the whole dispatch layer exists for.
#
# Floor entries for levels this machine cannot run (e.g. avx2 floors
# on an sse2-only box) are skipped with a note, so one floor file
# serves heterogeneous runners.
#
# Usage: scripts/check_wallclock.sh [build-dir]
#        (default: $BUILD_DIR, then build)
# To re-pin after an intentional change or on a new reference machine:
#        scripts/check_wallclock.sh --update [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
if [ "${1:-}" = "--update" ]; then
  UPDATE=1
  shift
fi
BUILD="${1:-${BUILD_DIR:-build}}"
FLOOR=bench/golden/wallclock_floor.json
OUT="${WALLCLOCK_JSON:-BENCH_wallclock.json}"

echo "== bench_micro --wallclock -> $OUT =="
timeout 600 "$BUILD/bench/bench_micro" --wallclock --json "$OUT"

if [ "$UPDATE" -eq 1 ]; then
  python3 - "$OUT" "$FLOOR" <<'EOF'
import json, sys

out_path, floor_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    result = json.load(f)

# Floors at 25% of the reference machine's measurement: generous
# enough for shared CI runners, tight enough that a kernel dropping to
# scalar-without-SIMD or an accidentally quadratic encode still trips.
floors = {key: round(r["mpix_s"] * 0.25, 3)
          for key, r in result["kernels"].items()}
floor = {
    "comment": "throughput floors pinned by check_wallclock.sh --update",
    "image": result["image"],
    "min_speedup": 1.2,
    "speedup_kernels": ["over_back", "trle_decode_blend"],
    "floors_mpix_s": floors,
}
with open(floor_path, "w") as f:
    json.dump(floor, f, indent=2)
    f.write("\n")
print(f"updated {floor_path} ({len(floors)} floors)")
EOF
  exit 0
fi

python3 - "$OUT" "$FLOOR" <<'EOF'
import json, sys

out_path, floor_path = sys.argv[1], sys.argv[2]
with open(out_path) as f:
    result = json.load(f)
with open(floor_path) as f:
    floor = json.load(f)

kernels = result["kernels"]
speedups = result.get("speedup", {})
fail = False

for key, want in sorted(floor["floors_mpix_s"].items()):
    got = kernels.get(key)
    if got is None:
        print(f"skip {key}: level not supported on this machine")
        continue
    mpix = got["mpix_s"]
    status = "ok  " if mpix >= want else "FAIL"
    print(f"{status} {key}: {mpix:.1f} Mpix/s (floor {want})")
    if mpix < want:
        fail = True

min_speedup = floor["min_speedup"]
for kernel in floor["speedup_kernels"]:
    # Gate only the highest level this machine supports: that is what
    # `auto` dispatch actually runs. Lower levels (sse2 on an avx2 box)
    # are correctness-tested but not perf-gated — on wide-vector CPUs
    # they can legitimately tie well-autovectorized scalar.
    best = next((f"{kernel}/{lv}" for lv in ("avx2", "sse2")
                 if f"{kernel}/{lv}" in speedups), None)
    if best is None:
        print(f"skip speedup {kernel}: no SIMD level on this machine")
        continue
    s = speedups[best]
    status = "ok  " if s >= min_speedup else "FAIL"
    print(f"{status} speedup {best}: {s:.2f}x (min {min_speedup}x)")
    if s < min_speedup:
        fail = True

if fail:
    print("wall-clock floor check FAILED — a kernel regressed below its")
    print("pinned throughput floor or lost its SIMD speedup. If the")
    print("change is intentional (or the reference machine changed),")
    print("re-pin with: scripts/check_wallclock.sh --update")
    sys.exit(1)
print("all wall-clock floors hold")
EOF
