#!/usr/bin/env bash
# CI-style check that the paper's headline results still reproduce.
# Usage: scripts/check_repro.sh [build-dir]   (default: $BUILD_DIR,
# then build)
#
# Everything here is deterministic (virtual time), so exact greps are
# safe: if one fails, either the semantics or the calibration changed.
set -euo pipefail
BUILD="${1:-${BUILD_DIR:-build}}"
fail=0

check() {  # check <description> <command> <expected-grep>
  local desc="$1" cmd="$2" expect="$3"
  # timeout matches CI's per-test ctest --timeout: a hung bench fails
  # the check instead of wedging the run.
  if out=$(eval "timeout 120 $cmd" 2>&1) && grep -qF "$expect" <<<"$out"; then
    echo "ok   $desc"
  else
    echo "FAIL $desc  (wanted: $expect)"
    fail=1
  fi
}

check "Eq.(5) bound reproduces the paper's 4.3" \
      "$BUILD/bench/bench_eq56_bounds" \
      "Eq.(5) 2N_RT bound = 4.20"

check "Figure 5: measured optimal N_RT block count" \
      "$BUILD/bench/bench_fig5_blocks" \
      "measured best N = 4"

check "Figure 5: measured optimal 2N_RT block count" \
      "$BUILD/bench/bench_fig5_blocks" \
      "measured best 2N = 4   (paper reports 4)"

check "Figure 6: rotate-tiling beats the baselines" \
      "$BUILD/bench/bench_fig6_methods" \
      "2N_RT       4      3.7505        0.1111"

check "Table 1: measured binary-swap equals its model row" \
      "$BUILD/bench/bench_table1_model" \
      "0.1318             0.1318"

check "schedule trace: Figure 1 shape (P=3, 4 blocks, 2 steps)" \
      "$BUILD/tools/rtcomp schedule --ranks 3 --blocks 4 --variant 2n" \
      "2N_RT, P=3, 4 initial blocks, 2 steps"

check "predictor matches the simulator at the paper operating point" \
      "$BUILD/tools/rtcomp predict --ranks 32 --blocks 4" \
      "predicted composition time: 0.111149 s"

if [ "$fail" -ne 0 ]; then
  echo "reproduction drifted — see failures above"
  exit 1
fi
echo "all reproduction checks passed"
